// Determinism: the core requirement of §IV-A — every miner must derive a
// bit-identical allocation without a consensus round.
#include <gtest/gtest.h>

#include "txallo/core/controller.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

using alloc::AllocationParams;

struct World {
  workload::EthereumLikeConfig config;
  chain::Ledger ledger;
  graph::TransactionGraph graph;
  chain::AccountRegistry registry;
  std::vector<graph::NodeId> node_order;
};

World MakeWorld(uint64_t seed) {
  World w;
  w.config.num_blocks = 50;
  w.config.txs_per_block = 80;
  w.config.num_accounts = 1'200;
  w.config.num_communities = 24;
  w.config.seed = seed;
  workload::EthereumLikeGenerator gen(w.config);
  w.ledger = gen.GenerateLedger(w.config.num_blocks);
  w.graph = graph::BuildTransactionGraph(w.ledger);
  w.graph.EnsureNodeCount(gen.registry().size());
  w.graph.Consolidate();
  for (size_t a = 0; a < gen.registry().size(); ++a) {
    w.registry.Intern(
        gen.registry().AddressOf(static_cast<chain::AccountId>(a)));
  }
  w.node_order = w.registry.IdsInHashOrder();
  return w;
}

TEST(DeterminismTest, GlobalTxAlloBitIdenticalAcrossRuns) {
  World w = MakeWorld(5);
  AllocationParams params =
      AllocationParams::ForExperiment(w.ledger.num_transactions(), 8, 4.0);
  auto first = core::RunGlobalTxAllo(w.graph, w.node_order, params);
  auto second = core::RunGlobalTxAllo(w.graph, w.node_order, params);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first.value() == second.value());
}

TEST(DeterminismTest, TwoIndependentMinersAgree) {
  // Two "miners" rebuild everything from the same ledger — separate graph
  // objects, separate registries — and must produce identical mappings.
  World alice = MakeWorld(6);
  World bob = MakeWorld(6);
  AllocationParams params = AllocationParams::ForExperiment(
      alice.ledger.num_transactions(), 10, 2.0);
  auto a = core::RunGlobalTxAllo(alice.graph, alice.node_order, params);
  auto b = core::RunGlobalTxAllo(bob.graph, bob.node_order, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value() == b.value());
}

TEST(DeterminismTest, NodeOrderMattersButIsCanonical) {
  // A different iteration order may give a different (still valid) result —
  // which is exactly why the paper pins the order to the account hash.
  World w = MakeWorld(7);
  AllocationParams params =
      AllocationParams::ForExperiment(w.ledger.num_transactions(), 8, 2.0);
  std::vector<graph::NodeId> id_order(w.graph.num_nodes());
  for (size_t i = 0; i < id_order.size(); ++i) {
    id_order[i] = static_cast<graph::NodeId>(i);
  }
  auto canonical = core::RunGlobalTxAllo(w.graph, w.node_order, params);
  auto by_id = core::RunGlobalTxAllo(w.graph, id_order, params);
  ASSERT_TRUE(canonical.ok());
  ASSERT_TRUE(by_id.ok());
  EXPECT_TRUE(canonical->Validate().ok());
  EXPECT_TRUE(by_id->Validate().ok());
  // Both runs with the same order are identical (sanity of the premise).
  auto canonical2 = core::RunGlobalTxAllo(w.graph, w.node_order, params);
  ASSERT_TRUE(canonical2.ok());
  EXPECT_TRUE(canonical.value() == canonical2.value());
}

TEST(DeterminismTest, HybridControllersConvergeIdentically) {
  // Two controllers fed the same block stream with the same schedule must
  // agree after every step — the A-TxAllo path must be deterministic too.
  workload::EthereumLikeConfig config;
  config.num_blocks = 60;
  config.txs_per_block = 40;
  config.num_accounts = 600;
  config.num_communities = 12;
  config.seed = 99;
  workload::EthereumLikeGenerator gen_a(config);
  workload::EthereumLikeGenerator gen_b(config);
  AllocationParams params = AllocationParams::ForExperiment(1, 6, 2.0);
  core::TxAlloController ctrl_a(&gen_a.registry(), params);
  core::TxAlloController ctrl_b(&gen_b.registry(), params);

  for (int step = 0; step < 6; ++step) {
    for (int blk = 0; blk < 10; ++blk) {
      ctrl_a.ApplyBlock(gen_a.NextBlock());
      ctrl_b.ApplyBlock(gen_b.NextBlock());
    }
    if (step == 0) {
      ASSERT_TRUE(ctrl_a.StepGlobal().ok());
      ASSERT_TRUE(ctrl_b.StepGlobal().ok());
    } else {
      ASSERT_TRUE(ctrl_a.StepAdaptive().ok());
      ASSERT_TRUE(ctrl_b.StepAdaptive().ok());
    }
    ASSERT_TRUE(ctrl_a.allocation() == ctrl_b.allocation())
        << "diverged at step " << step;
  }
}

}  // namespace
}  // namespace txallo

// Integration: the paper's closed-form performance model (§III-B) against
// the operational discrete-block simulator. The two are independent
// implementations of the same semantics; steady-state numbers must agree.
#include <gtest/gtest.h>

#include "txallo/alloc/metrics.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/sim/shard_sim.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

using alloc::AllocationParams;

TEST(ModelVsSimTest, AllIntraUnderCapacityBothIdeal) {
  // k=2, perfectly split intra traffic, ample capacity: the model says
  // Λ = |T|, ζ = 1; the simulator must commit everything in one block
  // (+0 cross rounds).
  alloc::Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  std::vector<chain::Transaction> txs;
  for (int i = 0; i < 50; ++i) {
    txs.push_back(chain::Transaction::Simple(0, 1));
    txs.push_back(chain::Transaction::Simple(2, 3));
  }
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 2.0;
  params.capacity = 50.0;  // Exactly σ_i.
  params.epsilon = 0.0;
  auto model = alloc::EvaluateAllocation(txs, a, params);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->throughput, 100.0);
  EXPECT_DOUBLE_EQ(model->avg_latency_blocks, 1.0);

  sim::SimConfig config;
  config.num_shards = 2;
  config.eta = 2.0;
  config.capacity_per_block = 50.0;
  sim::ShardSimulator sim(config);
  ASSERT_TRUE(sim.SubmitBlock(txs, a).ok());
  sim::SimReport report = sim.DrainAndReport();
  EXPECT_EQ(report.committed, 100u);
  EXPECT_DOUBLE_EQ(report.avg_latency_blocks, 1.0);
  EXPECT_EQ(report.blocks_elapsed, 1u);
}

TEST(ModelVsSimTest, OverloadedShardLatencyMatchesIntegralModel) {
  // One shard, σ̂ = 4: model mean latency = (4+1)/2 = 2.5 blocks.
  alloc::Allocation a(2, 1);
  a.Assign(0, 0);
  a.Assign(1, 0);
  std::vector<chain::Transaction> txs(100, chain::Transaction::Simple(0, 1));
  AllocationParams params;
  params.num_shards = 1;
  params.eta = 2.0;
  params.capacity = 25.0;
  params.epsilon = 0.0;
  auto model = alloc::EvaluateAllocation(txs, a, params);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->avg_latency_blocks, 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(model->worst_latency_blocks, 4.0);

  sim::SimConfig config;
  config.num_shards = 1;
  config.eta = 2.0;
  config.capacity_per_block = 25.0;
  sim::ShardSimulator sim(config);
  ASSERT_TRUE(sim.SubmitBlock(txs, a).ok());
  sim::SimReport report = sim.DrainAndReport();
  EXPECT_NEAR(report.avg_latency_blocks, 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(report.max_latency_blocks, 4.0);
}

TEST(ModelVsSimTest, CrossShardWorkloadInflatesDrainTime) {
  // All-cross traffic at η=3: the simulator must take ~η times longer to
  // drain than the same volume of intra traffic — σ's η factor made real.
  alloc::Allocation a(2, 2);
  a.Assign(0, 0);
  a.Assign(1, 1);
  std::vector<chain::Transaction> cross_txs(
      60, chain::Transaction::Simple(0, 1));
  sim::SimConfig config;
  config.num_shards = 2;
  config.eta = 3.0;
  config.capacity_per_block = 10.0;
  sim::ShardSimulator cross_sim(config);
  ASSERT_TRUE(cross_sim.SubmitBlock(cross_txs, a).ok());
  sim::SimReport cross_report = cross_sim.DrainAndReport();
  // Each shard: 60 parts * 3 work / 10 capacity = 18 blocks (+1 commit).
  EXPECT_NEAR(static_cast<double>(cross_report.blocks_elapsed), 19.0, 1.0);

  alloc::Allocation same(2, 2);
  same.Assign(0, 0);
  same.Assign(1, 0);
  sim::ShardSimulator intra_sim(config);
  ASSERT_TRUE(intra_sim.SubmitBlock(cross_txs, same).ok());
  sim::SimReport intra_report = intra_sim.DrainAndReport();
  EXPECT_NEAR(static_cast<double>(intra_report.blocks_elapsed), 6.0, 1.0);
}

TEST(ModelVsSimTest, SteadyStateThroughputAgreesOnRealisticWorkload) {
  // Stream a generated workload through both the model and the simulator
  // under the same hash allocation; per-block committed throughput must be
  // within 15% of the model's capacity-clamped Λ per block.
  workload::EthereumLikeConfig gen_config;
  gen_config.num_blocks = 40;
  gen_config.txs_per_block = 80;
  gen_config.num_accounts = 800;
  gen_config.num_communities = 16;
  gen_config.multi_party_rate = 0.0;  // Keep µ <= 2 for a crisp comparison.
  gen_config.self_loop_rate = 0.0;
  workload::EthereumLikeGenerator gen(gen_config);
  chain::Ledger ledger = gen.GenerateLedger(gen_config.num_blocks);
  const uint32_t k = 4;
  const double eta = 2.0;
  auto allocation = baselines::AllocateByHash(gen.registry(), k);

  AllocationParams params = AllocationParams::ForExperiment(
      ledger.num_transactions(), k, eta);
  // Per-block capacity: scale λ to one block's worth of transactions.
  const double per_block_capacity =
      params.capacity / static_cast<double>(gen_config.num_blocks);

  auto model = alloc::EvaluateAllocation(ledger, allocation, params);
  ASSERT_TRUE(model.ok());
  const double model_throughput_per_block =
      model->throughput / static_cast<double>(gen_config.num_blocks);

  sim::SimConfig config;
  config.num_shards = k;
  config.eta = eta;
  config.capacity_per_block = per_block_capacity;
  sim::ShardSimulator sim(config);
  for (const chain::Block& block : ledger.blocks()) {
    ASSERT_TRUE(sim.SubmitBlock(block.transactions(), allocation).ok());
    sim.Tick();
  }
  sim::SimReport report = sim.Snapshot();
  EXPECT_NEAR(report.throughput_per_block, model_throughput_per_block,
              0.15 * model_throughput_per_block);
}

}  // namespace
}  // namespace txallo

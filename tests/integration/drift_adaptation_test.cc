// Integration: the hybrid controller under transaction-pattern drift —
// the scenario A-TxAllo exists for. Also exercises history decay in the
// full loop.
#include <gtest/gtest.h>

#include "txallo/alloc/metrics.h"
#include "txallo/core/controller.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

workload::EthereumLikeConfig DriftConfig() {
  workload::EthereumLikeConfig config;
  config.num_blocks = 400;
  config.txs_per_block = 60;
  config.num_accounts = 2'000;
  config.num_communities = 24;
  config.drift_interval_blocks = 40;
  config.drift_fraction = 0.3;
  config.drift_partner_share = 0.8;
  config.seed = 77;
  return config;
}


// γ of `allocation` over the window's transactions, counting only
// transactions whose accounts the (possibly stale) mapping covers.
double PartialGamma(const std::vector<chain::Block>& window,
                    const alloc::Allocation& allocation) {
  uint64_t total = 0, cross = 0;
  for (const chain::Block& blk : window) {
    for (const chain::Transaction& tx : blk.transactions()) {
      const uint32_t mu = alloc::ShardsTouched(tx, allocation);
      if (mu == 0) continue;  // Unassigned (post-snapshot) account.
      ++total;
      if (mu > 1) ++cross;
    }
  }
  return total > 0 ? static_cast<double>(cross) / total : 0.0;
}

TEST(DriftAdaptationTest, AdaptiveStepsTrackDriftBetterThanStaleSnapshot) {
  workload::EthereumLikeGenerator gen(DriftConfig());
  auto params = alloc::AllocationParams::ForExperiment(1, 6, 2.0);
  core::TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 120; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepGlobal().ok());
  const alloc::Allocation stale = controller.allocation();

  double live_gamma_sum = 0.0;
  double stale_gamma_sum = 0.0;
  int windows = 0;
  for (int w = 0; w < 7; ++w) {
    std::vector<chain::Block> window;
    for (int b = 0; b < 40; ++b) {
      window.push_back(gen.NextBlock());
      controller.ApplyBlock(window.back());
    }
    ASSERT_TRUE(controller.StepAdaptive().ok());
    live_gamma_sum += PartialGamma(window, controller.allocation());
    stale_gamma_sum += PartialGamma(window, stale);
    ++windows;
  }
  // The adaptively maintained mapping must not fall behind the frozen
  // bootstrap snapshot on the traffic it routes, and must stay usable.
  EXPECT_LE(live_gamma_sum, stale_gamma_sum + 0.02 * windows);
  EXPECT_LT(live_gamma_sum / windows, 0.55);
}

TEST(DriftAdaptationTest, DecayedControllerKeepsStateConsistentUnderDrift) {
  workload::EthereumLikeGenerator gen(DriftConfig());
  auto params = alloc::AllocationParams::ForExperiment(1, 6, 2.0);
  core::ControllerOptions options;
  core::TxAlloController controller(&gen.registry(), params, options);
  for (int b = 0; b < 120; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepGlobal().ok());
  for (int w = 0; w < 4; ++w) {
    ASSERT_TRUE(controller.ApplyHistoryDecay(0.7).ok());
    for (int b = 0; b < 40; ++b) controller.ApplyBlock(gen.NextBlock());
    ASSERT_TRUE(controller.StepAdaptive().ok());
    // Incremental state must match the oracle after decay + blocks + step.
    core::TxAlloController copy = controller;
    copy.RecomputeState();
    for (uint32_t c = 0; c < params.num_shards; ++c) {
      ASSERT_NEAR(controller.state().sigma[c], copy.state().sigma[c],
                  1e-5 * (1.0 + copy.state().sigma[c]))
          << "window " << w << " shard " << c;
    }
  }
}

TEST(DriftAdaptationTest, GlobalRefreshRecoversFromDrift) {
  // After heavy drift, a global refresh lands within a few percent of the
  // adaptively maintained throughput. (It re-derives a fresh local optimum
  // from scratch; it is not guaranteed to dominate the incrementally
  // tracked one — A-TxAllo inherits a well-adapted starting point.)
  workload::EthereumLikeGenerator gen(DriftConfig());
  auto params = alloc::AllocationParams::ForExperiment(1, 6, 2.0);
  core::TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 120; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepGlobal().ok());
  for (int w = 0; w < 5; ++w) {
    for (int b = 0; b < 40; ++b) controller.ApplyBlock(gen.NextBlock());
    ASSERT_TRUE(controller.StepAdaptive().ok());
  }
  const double adaptive_only = controller.CurrentThroughput();
  ASSERT_TRUE(controller.StepGlobal().ok());
  EXPECT_GE(controller.CurrentThroughput(), adaptive_only * 0.90);
}

}  // namespace
}  // namespace txallo

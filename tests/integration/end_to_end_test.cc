// Integration: all four allocation methods on one synthetic Ethereum-like
// workload, checked for the qualitative orderings the paper reports.
#include <gtest/gtest.h>

#include <numeric>

#include "txallo/alloc/metrics.h"
#include "txallo/baselines/hash_allocator.h"
#include "txallo/baselines/metis/partitioner.h"
#include "txallo/baselines/shard_scheduler.h"
#include "txallo/core/global.h"
#include "txallo/graph/builder.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

using alloc::AllocationParams;
using alloc::EvaluationReport;

struct Fixture {
  workload::EthereumLikeConfig config;
  chain::Ledger ledger;
  graph::TransactionGraph graph;
  chain::AccountRegistry registry;
  std::vector<graph::NodeId> node_order;

  static Fixture Make() {
    Fixture f;
    f.config.num_blocks = 80;
    f.config.txs_per_block = 120;
    f.config.num_accounts = 2'400;
    f.config.num_communities = 48;
    f.config.seed = 2024;
    workload::EthereumLikeGenerator gen(f.config);
    f.ledger = gen.GenerateLedger(f.config.num_blocks);
    f.graph = graph::BuildTransactionGraph(f.ledger);
    f.graph.EnsureNodeCount(gen.registry().size());
    f.graph.Consolidate();
    // Registry copy via re-interning (registry is move-only practical).
    for (size_t a = 0; a < gen.registry().size(); ++a) {
      f.registry.Intern(
          gen.registry().AddressOf(static_cast<chain::AccountId>(a)));
    }
    f.node_order = f.registry.IdsInHashOrder();
    return f;
  }
};

EvaluationReport Evaluate(const Fixture& f, const alloc::Allocation& a,
                          const AllocationParams& params) {
  auto report = alloc::EvaluateAllocation(f.ledger, a, params);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.value();
}

TEST(EndToEndTest, QualitativeOrderingsMatchPaper) {
  Fixture f = Fixture::Make();
  const uint32_t k = 8;
  const double eta = 2.0;
  AllocationParams params =
      AllocationParams::ForExperiment(f.ledger.num_transactions(), k, eta);

  // TxAllo.
  auto txallo = core::RunGlobalTxAllo(f.graph, f.node_order, params);
  ASSERT_TRUE(txallo.ok()) << txallo.status().ToString();
  EvaluationReport r_txallo = Evaluate(f, txallo.value(), params);

  // Hash-based random.
  auto hashed = baselines::AllocateByHash(f.registry, k);
  EvaluationReport r_hash = Evaluate(f, hashed, params);

  // METIS-style.
  auto metis = baselines::metis::PartitionGraph(f.graph, k);
  ASSERT_TRUE(metis.ok());
  EvaluationReport r_metis = Evaluate(f, metis.value(), params);

  // Shard Scheduler.
  baselines::ShardScheduler scheduler(k, eta);
  scheduler.ProcessLedger(f.ledger);
  EvaluationReport r_sched =
      Evaluate(f, scheduler.SnapshotAllocation(f.registry.size()), params);

  // --- Fig. 2: cross-shard ratio ordering. ---
  EXPECT_LT(r_txallo.cross_shard_ratio, r_metis.cross_shard_ratio + 0.05);
  EXPECT_LT(r_txallo.cross_shard_ratio, 0.45);
  EXPECT_LT(r_metis.cross_shard_ratio, r_hash.cross_shard_ratio);
  EXPECT_GT(r_hash.cross_shard_ratio, 0.75);  // ~1 - 1/k and multi-party.
  EXPECT_LT(r_txallo.cross_shard_ratio, r_sched.cross_shard_ratio);

  // --- Fig. 5: throughput ordering (TxAllo best). ---
  EXPECT_GT(r_txallo.normalized_throughput,
            r_hash.normalized_throughput);
  EXPECT_GE(r_txallo.normalized_throughput,
            r_metis.normalized_throughput - 0.10 * k);

  // --- Fig. 6: average latency (TxAllo lowest or tied). ---
  EXPECT_LE(r_txallo.avg_latency_blocks, r_hash.avg_latency_blocks + 0.5);

  // --- Fig. 3/4: Shard Scheduler balance beats random. ---
  EXPECT_LT(r_sched.normalized_workload_stddev,
            r_hash.normalized_workload_stddev + 0.5);
}

TEST(EndToEndTest, TxAlloSelfAdjustsGammaWithEta) {
  // §VI-B2: larger η makes TxAllo prioritize γ — cross-shard ratio must
  // not increase when η grows.
  Fixture f = Fixture::Make();
  const uint32_t k = 8;
  double previous_gamma = 1.0;
  for (double eta : {2.0, 6.0, 10.0}) {
    AllocationParams params = AllocationParams::ForExperiment(
        f.ledger.num_transactions(), k, eta);
    auto result = core::RunGlobalTxAllo(f.graph, f.node_order, params);
    ASSERT_TRUE(result.ok());
    EvaluationReport report = Evaluate(f, result.value(), params);
    EXPECT_LE(report.cross_shard_ratio, previous_gamma + 0.03)
        << "eta=" << eta;
    previous_gamma = report.cross_shard_ratio;
  }
}

TEST(EndToEndTest, ThroughputScalesWithShardCount) {
  // Fig. 5: normalized throughput grows roughly linearly in k for TxAllo.
  Fixture f = Fixture::Make();
  double prev = 0.0;
  for (uint32_t k : {2u, 4u, 8u, 16u}) {
    AllocationParams params = AllocationParams::ForExperiment(
        f.ledger.num_transactions(), k, 2.0);
    auto result = core::RunGlobalTxAllo(f.graph, f.node_order, params);
    ASSERT_TRUE(result.ok());
    EvaluationReport report = Evaluate(f, result.value(), params);
    EXPECT_GT(report.normalized_throughput, prev) << "k=" << k;
    // Never better than the ideal k-fold speedup.
    EXPECT_LE(report.normalized_throughput, static_cast<double>(k) + 1e-9);
    prev = report.normalized_throughput;
  }
}

TEST(EndToEndTest, HashBaselineCrossRatioMatchesTheory) {
  // For 1-in-1-out transactions, hash allocation yields γ ≈ 1 - 1/k.
  Fixture f = Fixture::Make();
  for (uint32_t k : {2u, 10u, 40u}) {
    AllocationParams params = AllocationParams::ForExperiment(
        f.ledger.num_transactions(), k, 2.0);
    auto hashed = baselines::AllocateByHash(f.registry, k);
    EvaluationReport report = Evaluate(f, hashed, params);
    const double theory = 1.0 - 1.0 / static_cast<double>(k);
    EXPECT_NEAR(report.cross_shard_ratio, theory, 0.05) << "k=" << k;
  }
}

}  // namespace
}  // namespace txallo

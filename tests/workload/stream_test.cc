#include "txallo/workload/stream.h"

#include <gtest/gtest.h>

namespace txallo::workload {
namespace {

chain::Ledger MakeLedger(size_t blocks) {
  chain::Ledger ledger;
  for (size_t b = 0; b < blocks; ++b) {
    auto st = ledger.Append(
        chain::Block(b, {chain::Transaction::Simple(0, 1)}));
    EXPECT_TRUE(st.ok());
  }
  return ledger;
}

TEST(BlockWindowStreamTest, EvenWindows) {
  chain::Ledger ledger = MakeLedger(12);
  BlockWindowStream stream(&ledger, 4);
  EXPECT_EQ(stream.NumWindows(), 3u);
  auto w1 = stream.Next();
  EXPECT_EQ(w1.first_block_index, 0u);
  EXPECT_EQ(w1.last_block_index, 4u);
  auto w2 = stream.Next();
  EXPECT_EQ(w2.first_block_index, 4u);
  auto w3 = stream.Next();
  EXPECT_EQ(w3.last_block_index, 12u);
  EXPECT_TRUE(stream.Done());
}

TEST(BlockWindowStreamTest, RaggedTail) {
  chain::Ledger ledger = MakeLedger(10);
  BlockWindowStream stream(&ledger, 4);
  EXPECT_EQ(stream.NumWindows(), 3u);
  stream.Next();
  stream.Next();
  auto tail = stream.Next();
  EXPECT_EQ(tail.first_block_index, 8u);
  EXPECT_EQ(tail.last_block_index, 10u);
  EXPECT_TRUE(stream.Done());
}

TEST(BlockWindowStreamTest, EmptyLedgerIsDone) {
  chain::Ledger ledger;
  BlockWindowStream stream(&ledger, 4);
  EXPECT_TRUE(stream.Done());
  EXPECT_EQ(stream.NumWindows(), 0u);
}

TEST(BlockWindowStreamTest, ZeroBlocksPerStepYieldsNoWindows) {
  // A zero-width window can never advance the cursor; the stream must
  // report Done immediately (a `while (!Done()) Next()` loop previously
  // hung here) and agree with NumWindows() == 0.
  chain::Ledger ledger = MakeLedger(5);
  BlockWindowStream stream(&ledger, 0);
  EXPECT_TRUE(stream.Done());
  EXPECT_EQ(stream.NumWindows(), 0u);
}

TEST(BlockWindowStreamTest, ZeroBlocksPerStepOnEmptyLedger) {
  chain::Ledger ledger;
  BlockWindowStream stream(&ledger, 0);
  EXPECT_TRUE(stream.Done());
  EXPECT_EQ(stream.NumWindows(), 0u);
}

TEST(BlockWindowStreamTest, TrailingPartialWindowIsShortNotPadded) {
  // 9 blocks in windows of 4: the tail window is [8, 9), one block wide,
  // and iteration stops exactly there.
  chain::Ledger ledger = MakeLedger(9);
  BlockWindowStream stream(&ledger, 4);
  EXPECT_EQ(stream.NumWindows(), 3u);
  stream.Next();
  stream.Next();
  EXPECT_FALSE(stream.Done());
  auto tail = stream.Next();
  EXPECT_EQ(tail.first_block_index, 8u);
  EXPECT_EQ(tail.last_block_index, 9u);
  EXPECT_TRUE(stream.Done());
}

TEST(BlockWindowStreamTest, WindowLargerThanLedgerIsOneWindow) {
  chain::Ledger ledger = MakeLedger(3);
  BlockWindowStream stream(&ledger, 10);
  EXPECT_EQ(stream.NumWindows(), 1u);
  auto w = stream.Next();
  EXPECT_EQ(w.first_block_index, 0u);
  EXPECT_EQ(w.last_block_index, 3u);
  EXPECT_TRUE(stream.Done());
}

TEST(BlockWindowStreamTest, WindowsCoverLedgerExactlyOnce) {
  chain::Ledger ledger = MakeLedger(23);
  BlockWindowStream stream(&ledger, 7);
  size_t covered = 0;
  size_t expected_start = 0;
  while (!stream.Done()) {
    auto w = stream.Next();
    EXPECT_EQ(w.first_block_index, expected_start);
    covered += w.last_block_index - w.first_block_index;
    expected_start = w.last_block_index;
  }
  EXPECT_EQ(covered, 23u);
}

}  // namespace
}  // namespace txallo::workload

#include "txallo/workload/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "txallo/workload/ethereum_like.h"

namespace txallo::workload {
namespace {

TEST(DatasetCsvTest, RoundTripPreservesStructure) {
  EthereumLikeConfig config;
  config.num_blocks = 10;
  config.txs_per_block = 20;
  config.num_accounts = 200;
  config.num_communities = 5;
  EthereumLikeGenerator gen(config);

  Dataset original;
  original.ledger = gen.GenerateLedger(10);
  // Re-register the generator's accounts into the dataset registry.
  for (size_t a = 0; a < gen.registry().size(); ++a) {
    original.registry.Intern(
        gen.registry().AddressOf(static_cast<chain::AccountId>(a)));
  }

  const std::string path = ::testing::TempDir() + "/txallo_dataset.csv";
  ASSERT_TRUE(SaveDatasetCsv(original, path).ok());
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_transactions(), original.num_transactions());
  EXPECT_EQ(loaded->ledger.num_blocks(), original.ledger.num_blocks());
  // Addresses must map back to the same account structure per transaction.
  auto orig_txs = original.ledger.AllTransactions();
  auto load_txs = loaded->ledger.AllTransactions();
  ASSERT_EQ(orig_txs.size(), load_txs.size());
  for (size_t i = 0; i < orig_txs.size(); ++i) {
    ASSERT_EQ(orig_txs[i].inputs().size(), load_txs[i].inputs().size());
    for (size_t j = 0; j < orig_txs[i].inputs().size(); ++j) {
      EXPECT_EQ(original.registry.AddressOf(orig_txs[i].inputs()[j]),
                loaded->registry.AddressOf(load_txs[i].inputs()[j]));
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, ParsesHandWrittenFile) {
  const std::string path = ::testing::TempDir() + "/txallo_hand.csv";
  {
    std::ofstream out(path);
    out << "block_number,inputs,outputs\n";
    out << "100,0xa,0xb\n";
    out << "100,0xa;0xc,0xd\n";
    out << "101,0xb,0xb\n";
  }
  auto dataset = LoadDatasetCsv(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->ledger.num_blocks(), 2u);
  EXPECT_EQ(dataset->num_transactions(), 3u);
  EXPECT_EQ(dataset->num_accounts(), 4u);
  auto txs = dataset->ledger.AllTransactions();
  EXPECT_EQ(txs[1].inputs().size(), 2u);
  EXPECT_TRUE(txs[2].IsSelfLoop());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsDecreasingBlocks) {
  const std::string path = ::testing::TempDir() + "/txallo_bad.csv";
  {
    std::ofstream out(path);
    out << "5,0xa,0xb\n";
    out << "3,0xa,0xb\n";
  }
  auto dataset = LoadDatasetCsv(path);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsMissingColumns) {
  const std::string path = ::testing::TempDir() + "/txallo_cols.csv";
  {
    std::ofstream out(path);
    out << "5,0xa\n";
  }
  auto dataset = LoadDatasetCsv(path);
  ASSERT_FALSE(dataset.ok());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsEmptyAccountLists) {
  const std::string path = ::testing::TempDir() + "/txallo_empty.csv";
  {
    std::ofstream out(path);
    out << "5,,0xb\n";
  }
  auto dataset = LoadDatasetCsv(path);
  ASSERT_FALSE(dataset.ok());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsTrailingSemicolonInAddressList) {
  // "0xa;" has an empty trailing segment; interning "" would create a
  // phantom account, so the row must fail as corrupt, naming the row.
  const std::string path = ::testing::TempDir() + "/txallo_trail.csv";
  {
    std::ofstream out(path);
    out << "5,0xa;,0xb\n";
  }
  auto dataset = LoadDatasetCsv(path);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kCorruption);
  EXPECT_NE(dataset.status().message().find("row 0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsDoubledSemicolon) {
  const std::string path = ::testing::TempDir() + "/txallo_dsemi.csv";
  {
    std::ofstream out(path);
    out << "5,0xa,0xb;;0xc\n";
  }
  auto dataset = LoadDatasetCsv(path);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, DuplicateAddressesWithinASideAreDedupedFirstSeen) {
  const std::string path = ::testing::TempDir() + "/txallo_dup.csv";
  {
    std::ofstream out(path);
    out << "5,0xa;0xb;0xa,0xc;0xc\n";
  }
  auto dataset = LoadDatasetCsv(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  auto txs = dataset->ledger.AllTransactions();
  ASSERT_EQ(txs.size(), 1u);
  ASSERT_EQ(txs[0].inputs().size(), 2u);
  EXPECT_EQ(dataset->registry.AddressOf(txs[0].inputs()[0]), "0xa");
  EXPECT_EQ(dataset->registry.AddressOf(txs[0].inputs()[1]), "0xb");
  ASSERT_EQ(txs[0].outputs().size(), 1u);
  EXPECT_EQ(dataset->registry.AddressOf(txs[0].outputs()[0]), "0xc");
  // Deduping keeps the save -> load round trip stable.
  const std::string resaved = ::testing::TempDir() + "/txallo_dup2.csv";
  ASSERT_TRUE(SaveDatasetCsv(*dataset, resaved).ok());
  auto reloaded = LoadDatasetCsv(resaved);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_accounts(), dataset->num_accounts());
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(SplitLedgerTest, NineToOneSplit) {
  EthereumLikeConfig config;
  config.num_blocks = 100;
  config.txs_per_block = 5;
  config.num_accounts = 100;
  config.num_communities = 4;
  EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(100);
  auto [prefix, suffix] = SplitLedger(ledger, 0.9);
  EXPECT_EQ(prefix.num_blocks(), 90u);
  EXPECT_EQ(suffix.num_blocks(), 10u);
  EXPECT_EQ(prefix.num_transactions() + suffix.num_transactions(),
            ledger.num_transactions());
  // Suffix keeps original block numbers (continuation of the chain).
  EXPECT_EQ(suffix.blocks().front().number(), 90u);
}

TEST(SplitLedgerTest, DegenerateFractions) {
  chain::Ledger ledger;
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_TRUE(
        ledger
            .Append(chain::Block(
                b, {chain::Transaction::Simple(0, 1)}))
            .ok());
  }
  auto [all, none] = SplitLedger(ledger, 1.0);
  EXPECT_EQ(all.num_blocks(), 5u);
  EXPECT_EQ(none.num_blocks(), 0u);
  auto [empty, full] = SplitLedger(ledger, 0.0);
  EXPECT_EQ(empty.num_blocks(), 0u);
  EXPECT_EQ(full.num_blocks(), 5u);
}

TEST(SplitLedgerTest, InexactProductRoundsHalfUpNotTruncates) {
  // 0.9 * 95 lands exactly on 85.5; a truncating cast yields an 85-block
  // prefix and silently moves a block across the 9:1 split. Round half-up
  // gives 86/9.
  chain::Ledger ledger;
  for (uint64_t b = 0; b < 95; ++b) {
    ASSERT_TRUE(
        ledger.Append(chain::Block(b, {chain::Transaction::Simple(0, 1)}))
            .ok());
  }
  auto [prefix, suffix] = SplitLedger(ledger, 0.9);
  EXPECT_EQ(prefix.num_blocks(), 86u);
  EXPECT_EQ(suffix.num_blocks(), 9u);
}

TEST(SplitLedgerTest, SingleBlockHalfSplitKeepsTheBlockInThePrefix) {
  chain::Ledger ledger;
  ASSERT_TRUE(
      ledger.Append(chain::Block(0, {chain::Transaction::Simple(0, 1)}))
          .ok());
  auto [prefix, suffix] = SplitLedger(ledger, 0.5);
  EXPECT_EQ(prefix.num_blocks(), 1u);
  EXPECT_EQ(suffix.num_blocks(), 0u);
}

TEST(SplitLedgerTest, EmptyLedgerSplitsToTwoEmptyLedgers) {
  chain::Ledger ledger;
  auto [prefix, suffix] = SplitLedger(ledger, 0.7);
  EXPECT_EQ(prefix.num_blocks(), 0u);
  EXPECT_EQ(suffix.num_blocks(), 0u);
}

TEST(SplitLedgerTest, OutOfRangeFractionsAreClamped) {
  chain::Ledger ledger;
  for (uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(
        ledger.Append(chain::Block(b, {chain::Transaction::Simple(0, 1)}))
            .ok());
  }
  auto [all, none] = SplitLedger(ledger, 1.5);
  EXPECT_EQ(all.num_blocks(), 3u);
  auto [none2, all2] = SplitLedger(ledger, -0.5);
  EXPECT_EQ(none2.num_blocks(), 0u);
  EXPECT_EQ(all2.num_blocks(), 3u);
}

}  // namespace
}  // namespace txallo::workload

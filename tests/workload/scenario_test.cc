// Behavioral tests of the overlay primitives (scenario.h /
// scenario_overlays.h): envelope shapes, who the generated traffic actually
// touches, and the composition contracts — zero overlays reproduce the raw
// Ethereum-like stream bit-identically, and overlay replacement never
// changes the per-block transaction count.
#include "txallo/workload/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "txallo/engine/replay.h"
#include "txallo/workload/scenario_overlays.h"

namespace txallo::workload {
namespace {

EthereumLikeConfig SmallConfig() {
  EthereumLikeConfig config;
  config.num_blocks = 32;
  config.txs_per_block = 60;
  config.num_accounts = 800;
  config.num_communities = 12;
  config.seed = 7;
  return config;
}

// Counts the transactions in `ledger` with `id` among inputs or outputs.
uint64_t CountTouching(const chain::Ledger& ledger, chain::AccountId id) {
  uint64_t count = 0;
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.transactions()) {
      const auto& in = tx.inputs();
      const auto& out = tx.outputs();
      if (std::find(in.begin(), in.end(), id) != in.end() ||
          std::find(out.begin(), out.end(), id) != out.end()) {
        ++count;
      }
    }
  }
  return count;
}

TEST(OverlayScenarioTest, NoOverlaysMatchesRawGeneratorBitIdentically) {
  const EthereumLikeConfig config = SmallConfig();
  EthereumLikeGenerator raw(config);
  const chain::Ledger expected = raw.GenerateLedger(config.num_blocks);

  OverlayScenario scenario("ethereum", config, {});
  const chain::Ledger actual = scenario.GenerateLedger(config.num_blocks);

  EXPECT_EQ(engine::FingerprintLedger(actual),
            engine::FingerprintLedger(expected));
}

TEST(OverlayScenarioTest, OverlaysPreservePerBlockTransactionCount) {
  const EthereumLikeConfig config = SmallConfig();
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<SybilOverlay>(SybilParams{}));
  overlays.push_back(std::make_unique<HotSpikeOverlay>(HotSpikeParams{}));
  OverlayScenario scenario("test", config, std::move(overlays));
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);
  ASSERT_EQ(ledger.num_blocks(), config.num_blocks);
  for (const chain::Block& block : ledger.blocks()) {
    EXPECT_EQ(block.transactions().size(), config.txs_per_block);
  }
}

TEST(OverlayScenarioTest, SameSpecSameSeedIsBitIdentical) {
  const EthereumLikeConfig config = SmallConfig();
  auto make = [&]() {
    std::vector<std::unique_ptr<Overlay>> overlays;
    overlays.push_back(
        std::make_unique<ShardAttackOverlay>(ShardAttackParams{}));
    overlays.push_back(std::make_unique<ChurnOverlay>(ChurnParams{}));
    OverlayScenario scenario("test", config, std::move(overlays));
    return scenario.GenerateLedger(config.num_blocks);
  };
  EXPECT_EQ(engine::FingerprintLedger(make()),
            engine::FingerprintLedger(make()));
}

TEST(HotSpikeOverlayTest, ShareFollowsRampHoldDecayEnvelope) {
  HotSpikeParams params;
  params.start = 10;
  params.ramp = 4;
  params.hold = 3;
  params.decay = 2;
  params.peak_share = 0.8;
  HotSpikeOverlay overlay(params);
  EXPECT_DOUBLE_EQ(overlay.Share(0), 0.0);
  EXPECT_DOUBLE_EQ(overlay.Share(9), 0.0);
  // Ramp: (t+1)/ramp of the peak at t blocks past start.
  EXPECT_DOUBLE_EQ(overlay.Share(10), 0.8 * 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(overlay.Share(13), 0.8);
  // Hold.
  EXPECT_DOUBLE_EQ(overlay.Share(14), 0.8);
  EXPECT_DOUBLE_EQ(overlay.Share(16), 0.8);
  // Decay.
  EXPECT_DOUBLE_EQ(overlay.Share(17), 0.8 * 2.0 / 2.0);
  EXPECT_DOUBLE_EQ(overlay.Share(18), 0.8 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(overlay.Share(19), 0.0);
  EXPECT_DOUBLE_EQ(overlay.Share(100), 0.0);
}

TEST(HotSpikeOverlayTest, MintDominatesPeakBlocksOnly) {
  const EthereumLikeConfig config = SmallConfig();
  HotSpikeParams params;
  params.start = 8;
  params.ramp = 2;
  params.hold = 8;
  params.decay = 2;
  params.peak_share = 0.7;
  auto overlay = std::make_unique<HotSpikeOverlay>(params);
  HotSpikeOverlay* spike = overlay.get();
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::move(overlay));
  OverlayScenario scenario("spike-test", config, std::move(overlays));
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);

  const chain::AccountId mint = spike->mint_account();
  ASSERT_NE(mint, chain::kInvalidAccount);
  uint64_t before = 0, peak = 0;
  for (const chain::Block& block : ledger.blocks()) {
    uint64_t touching = 0;
    for (const chain::Transaction& tx : block.transactions()) {
      const auto& out = tx.outputs();
      if (std::find(out.begin(), out.end(), mint) != out.end()) ++touching;
    }
    if (block.number() < params.start) {
      before += touching;
    } else if (block.number() >= 10 && block.number() < 18) {  // Hold window.
      peak += touching;
    }
  }
  EXPECT_EQ(before, 0u);
  // 8 hold blocks x 60 txs x 0.7 expected share: well above half even with
  // sampling noise.
  EXPECT_GT(peak, 8 * config.txs_per_block / 2);
}

TEST(ShardAttackOverlayTest, VictimsAreExactlyHashRoutedResidents) {
  const EthereumLikeConfig config = SmallConfig();
  ShardAttackParams params;
  params.shards = 4;
  params.target = 2;
  params.share = 0.5;
  auto overlay = std::make_unique<ShardAttackOverlay>(params);
  ShardAttackOverlay* attack = overlay.get();
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::move(overlay));
  OverlayScenario scenario("attack-test", config, std::move(overlays));
  const uint64_t n = scenario.background().num_background_accounts();

  // The victim set matches a direct scan of the background population.
  uint64_t residents = 0;
  for (uint64_t id = 0; id < n; ++id) {
    if (scenario.registry().OrderKey(static_cast<chain::AccountId>(id)) %
            params.shards ==
        params.target) {
      ++residents;
    }
  }
  EXPECT_EQ(attack->num_victims(), residents);

  // Every transaction whose sender is an attacker (an account beyond the
  // background population) lands on a target-shard resident.
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);
  uint64_t attack_txs = 0;
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.transactions()) {
      if (tx.inputs()[0] < n) continue;
      ++attack_txs;
      ASSERT_EQ(tx.outputs().size(), 1u);
      EXPECT_EQ(scenario.registry().OrderKey(tx.outputs()[0]) % params.shards,
                params.target);
    }
  }
  // Half the traffic is attack traffic; require a healthy majority of it.
  EXPECT_GT(attack_txs, config.num_blocks * config.txs_per_block / 3);
}

TEST(SybilOverlayTest, FanOutAndStaggeredBirths) {
  const EthereumLikeConfig config = SmallConfig();
  SybilParams params;
  params.sybils = 64;
  params.fanout = 5;
  params.share = 0.4;
  params.horizon_blocks = config.num_blocks;
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<SybilOverlay>(params));
  OverlayScenario scenario("sybil-test", config, std::move(overlays));
  const uint64_t n = scenario.background().num_background_accounts();
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);

  // Sybil senders are the accounts interned beyond the background; their
  // transactions carry `fanout` outputs, and no sybil acts before birth.
  uint64_t sybil_txs = 0;
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.transactions()) {
      const chain::AccountId sender = tx.inputs()[0];
      if (sender < n) continue;
      ++sybil_txs;
      EXPECT_EQ(tx.outputs().size(), params.fanout);
      const uint64_t index = sender - n;
      const uint64_t born = std::min<uint64_t>(
          params.sybils,
          1 + block.number() * params.sybils / params.horizon_blocks);
      EXPECT_LT(index, born) << "sybil acted before its birth block";
    }
  }
  EXPECT_GT(sybil_txs, 0u);
}

TEST(MultiAssetOverlayTest, AssetTransfersCarryAContractOutput) {
  const EthereumLikeConfig config = SmallConfig();
  MultiAssetParams params;
  params.assets = 6;
  params.share = 0.5;
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<MultiAssetOverlay>(params));
  OverlayScenario scenario("asset-test", config, std::move(overlays));
  const uint64_t n = scenario.background().num_background_accounts();
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);

  uint64_t asset_txs = 0;
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.transactions()) {
      // Overlay transactions end with one of the `assets` fresh contracts.
      const chain::AccountId last = tx.outputs().back();
      if (last < n) continue;
      ++asset_txs;
      EXPECT_EQ(tx.outputs().size(), 2u);
      EXPECT_LT(last - n, params.assets);
    }
  }
  // Half the stream carries an asset output, modulo sampling noise.
  EXPECT_GT(asset_txs, config.num_blocks * config.txs_per_block / 3);
}

TEST(ChurnOverlayTest, DeadAccountsStopTransacting) {
  const EthereumLikeConfig config = SmallConfig();
  ChurnParams params;
  params.pool = 16;
  params.lifetime = 4;
  params.share = 0.5;
  params.intra = 0.0;  // Counterparties from the background: senders are the
                       // only churn accounts in the stream.
  params.horizon_blocks = config.num_blocks;
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<ChurnOverlay>(params));
  OverlayScenario scenario("churn-test", config, std::move(overlays));
  const uint64_t n = scenario.background().num_background_accounts();
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);

  // Pool account j is born at j * spacing (spacing = horizon / pool) and
  // dies lifetime blocks later; no churn sender may act outside its window.
  const uint64_t spacing = params.horizon_blocks / params.pool;
  uint64_t churn_txs = 0;
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.transactions()) {
      const chain::AccountId sender = tx.inputs()[0];
      if (sender < n) continue;
      ++churn_txs;
      const uint64_t j = sender - n;
      const uint64_t birth = j * spacing;
      EXPECT_GE(block.number(), birth);
      EXPECT_LE(block.number(), birth + params.lifetime);
    }
  }
  EXPECT_GT(churn_txs, 0u);
}

TEST(DiurnalOverlayTest, TrafficFollowsTheAwakeWindow) {
  const EthereumLikeConfig config = SmallConfig();
  DiurnalParams params;
  params.period = 8;
  params.share = 1.0;  // The whole stream follows the window: every
                       // transaction must obey it.
  params.width = 2;
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<DiurnalOverlay>(params));
  OverlayScenario scenario("diurnal-test", config, std::move(overlays));
  // Access to CommunityOf requires the generator; overlay traffic samples
  // real community members, so community membership is checkable.
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);
  const EthereumLikeGenerator& background = scenario.background();
  const uint32_t nc = background.num_communities();
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.transactions()) {
      const uint32_t c = background.CommunityOf(tx.inputs()[0]);
      const uint64_t base = (block.number() % params.period) * nc /
                            params.period;
      const uint32_t offset = (c + nc - static_cast<uint32_t>(base % nc)) % nc;
      EXPECT_LT(offset, params.width)
          << "block " << block.number() << " sender community " << c
          << " outside awake window starting at " << base;
    }
  }
}

TEST(ScenarioTest, CountTouchingHelperSeesHub) {
  // Sanity-check the helper against the background hub, which by
  // construction appears in a hub_share slice of the stream.
  const EthereumLikeConfig config = SmallConfig();
  OverlayScenario scenario("ethereum", config, {});
  const chain::Ledger ledger = scenario.GenerateLedger(config.num_blocks);
  EXPECT_GT(CountTouching(ledger, scenario.background().hub_account()), 0u);
}

}  // namespace
}  // namespace txallo::workload

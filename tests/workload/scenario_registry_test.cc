// Conformance suite over the scenario registry: every name in
// RegisteredScenarioNames() must honour the Scenario contract (per-seed
// determinism, shape keys, strict option validation) and self-describe.
// Scenario-specific behavior lives in scenario_test.cc; this file is the
// part a new scenario gets for free — and cannot opt out of.
#include "txallo/workload/scenario_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "txallo/engine/replay.h"

namespace txallo::workload {
namespace {

ScenarioShape SmallShape() {
  ScenarioShape shape;
  shape.num_blocks = 12;
  shape.txs_per_block = 30;
  shape.num_accounts = 600;
  shape.num_communities = 10;
  shape.seed = 11;
  return shape;
}

TEST(ScenarioRegistryTest, EveryRegisteredNameInstantiates) {
  for (const std::string& name : RegisteredScenarioNames()) {
    SCOPED_TRACE(name);
    auto scenario = MakeScenarioFromSpec(name, SmallShape());
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    EXPECT_EQ((*scenario)->spec(), name);
    EXPECT_EQ((*scenario)->num_blocks(), SmallShape().num_blocks);
    const chain::Ledger ledger =
        (*scenario)->GenerateLedger((*scenario)->num_blocks());
    EXPECT_EQ(ledger.num_blocks(), SmallShape().num_blocks);
    EXPECT_EQ(ledger.num_transactions(),
              SmallShape().num_blocks * SmallShape().txs_per_block);
    // The registry covers the whole stream (accounts pre-interned).
    EXPECT_GE((*scenario)->registry().size(), SmallShape().num_accounts);
  }
}

TEST(ScenarioRegistryTest, EveryScenarioIsDeterministicPerSeed) {
  for (const std::string& name : RegisteredScenarioNames()) {
    SCOPED_TRACE(name);
    auto fingerprint = [&](uint64_t seed) {
      ScenarioShape shape = SmallShape();
      shape.seed = seed;
      auto scenario = MakeScenarioFromSpec(name, shape);
      EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
      return engine::FingerprintLedger(
          (*scenario)->GenerateLedger((*scenario)->num_blocks()));
    };
    EXPECT_EQ(fingerprint(3), fingerprint(3));
    EXPECT_NE(fingerprint(3), fingerprint(4))
        << "seed does not reach the stream";
  }
}

TEST(ScenarioRegistryTest, CommonShapeKeysOverrideTheProgrammaticShape) {
  for (const std::string& name : RegisteredScenarioNames()) {
    SCOPED_TRACE(name);
    auto scenario = MakeScenarioFromSpec(
        name + ":blocks=5,txs-per-block=7,accounts=300,communities=6,seed=2",
        SmallShape());
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    const chain::Ledger ledger = (*scenario)->GenerateLedger(5);
    EXPECT_EQ((*scenario)->num_blocks(), 5u);
    EXPECT_EQ(ledger.num_transactions(), 35u);
  }
}

TEST(ScenarioRegistryTest, UnknownNameIsNotFoundAndListsTheRegistry) {
  auto scenario = MakeScenarioFromSpec("tsunami", SmallShape());
  ASSERT_FALSE(scenario.ok());
  EXPECT_EQ(scenario.status().code(), StatusCode::kNotFound);
  EXPECT_NE(scenario.status().message().find("ethereum"), std::string::npos);
}

TEST(ScenarioRegistryTest, UnknownKeyIsRejectedForEveryScenario) {
  for (const std::string& name : RegisteredScenarioNames()) {
    SCOPED_TRACE(name);
    auto scenario =
        MakeScenarioFromSpec(name + ":bogus-knob=1", SmallShape());
    ASSERT_FALSE(scenario.ok());
    EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(scenario.status().message().find("bogus-knob"),
              std::string::npos);
  }
}

TEST(ScenarioRegistryTest, MalformedNumbersAreRejectedNotTruncated) {
  auto scenario = MakeScenarioFromSpec("ethereum:blocks=12banana",
                                       SmallShape());
  ASSERT_FALSE(scenario.ok());
  EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioRegistryTest, OutOfRangeValuesFailValidation) {
  const char* bad_specs[] = {
      "ethereum:intra=1.5",        // Fraction above 1.
      "ethereum:hub-share=-0.1",   // Fraction below 0.
      "spike:peak-share=2",        // Fraction above 1.
      "spike:ramp=0",              // Ramp must cover >= 1 block.
      "diurnal:period=0",          // Period must be > 0.
      "diurnal:width=0",           // Width must be > 0.
      "churn:pool=0",              // Pool must be > 0.
      "multi-asset:assets=0",      // Need at least one asset.
      "multi-asset:asset-skew=-1", // Zipf skew must be >= 0.
      "shard-attack:shards=0",     // Shards must be > 0.
      "shard-attack:shards=4,target=4",  // Target must be < shards.
      "sybil:fanout=0",            // Fanout must be > 0.
      "stress:target=9",           // Default shards=8; target out of range.
      "ethereum:blocks=0",         // Config-level validation: empty run.
      "ethereum:accounts=1",       // Need >= 2 accounts to transact.
  };
  for (const char* spec : bad_specs) {
    SCOPED_TRACE(spec);
    auto scenario = MakeScenarioFromSpec(spec, SmallShape());
    ASSERT_FALSE(scenario.ok());
    EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ScenarioRegistryTest, MakeScenarioRendersACanonicalSpec) {
  std::map<std::string, std::string> options = {{"peak-share", "0.7"},
                                                {"start", "3"}};
  auto scenario = MakeScenario("spike", SmallShape(), options);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ((*scenario)->spec(), "spike:peak-share=0.7,start=3");
}

TEST(ScenarioRegistryTest, DescriptionsCoverEveryNameAndOption) {
  const auto names = RegisteredScenarioNames();
  const auto docs = DescribeScenarios();
  ASSERT_EQ(docs.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    SCOPED_TRACE(names[i]);
    EXPECT_EQ(docs[i].name, names[i]);
    EXPECT_FALSE(docs[i].summary.empty());
    EXPECT_EQ(DescribeScenario(names[i]), docs[i].summary);
    // Every documented key is accepted (with its default untouched the
    // scenario must still build); round-trip through a real spec.
    for (const ScenarioOptionDoc& option : docs[i].options) {
      EXPECT_FALSE(option.help.empty());
      EXPECT_FALSE(option.type.empty());
    }
  }
  EXPECT_EQ(DescribeScenario("tsunami"), "");
}

TEST(ScenarioRegistryTest, UsageTextMentionsEveryScenarioAndCommonKeys) {
  const std::string usage = ScenarioUsageText();
  for (const std::string& name : RegisteredScenarioNames()) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
  for (const char* key :
       {"blocks", "txs-per-block", "accounts", "communities", "seed"}) {
    EXPECT_NE(usage.find(key), std::string::npos) << key;
  }
}

TEST(ScenarioRegistryTest, NamesAreSortedAndStable) {
  const auto names = RegisteredScenarioNames();
  ASSERT_FALSE(names.empty());
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
  // The catalog this PR ships; growing it is fine, renaming is a break.
  EXPECT_NE(std::find(names.begin(), names.end(), "ethereum"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "spike"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "shard-attack"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sybil"), names.end());
}

}  // namespace
}  // namespace txallo::workload

#include "txallo/workload/ethereum_like.h"

#include <gtest/gtest.h>

#include "txallo/graph/builder.h"
#include "txallo/graph/louvain.h"
#include "txallo/graph/stats.h"

namespace txallo::workload {
namespace {

EthereumLikeConfig TestConfig() {
  EthereumLikeConfig config;
  config.num_blocks = 100;
  config.txs_per_block = 100;
  config.num_accounts = 2'000;
  config.num_communities = 40;
  config.seed = 11;
  return config;
}

TEST(EthereumLikeTest, GeneratesRequestedVolume) {
  EthereumLikeGenerator gen(TestConfig());
  chain::Ledger ledger = gen.GenerateLedger(100);
  EXPECT_EQ(ledger.num_blocks(), 100u);
  EXPECT_EQ(ledger.num_transactions(), 100u * 100u);
  EXPECT_EQ(gen.registry().size(), 2'000u);
}

TEST(EthereumLikeTest, DeterministicForSameSeed) {
  EthereumLikeGenerator a(TestConfig());
  EthereumLikeGenerator b(TestConfig());
  chain::Ledger la = a.GenerateLedger(20);
  chain::Ledger lb = b.GenerateLedger(20);
  ASSERT_EQ(la.num_transactions(), lb.num_transactions());
  auto ta = la.AllTransactions();
  auto tb = lb.AllTransactions();
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].accounts(), tb[i].accounts()) << "tx " << i;
  }
}

TEST(EthereumLikeTest, DifferentSeedsDiffer) {
  EthereumLikeConfig config = TestConfig();
  EthereumLikeGenerator a(config);
  config.seed = 999;
  EthereumLikeGenerator b(config);
  auto ta = a.GenerateLedger(5).AllTransactions();
  auto tb = b.GenerateLedger(5).AllTransactions();
  int same = 0;
  for (size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].accounts() == tb[i].accounts()) ++same;
  }
  EXPECT_LT(same, static_cast<int>(ta.size()) / 2);
}

TEST(EthereumLikeTest, HubShareNearConfigured) {
  // ~11% of transactions must involve the hub (paper §VI-A).
  EthereumLikeGenerator gen(TestConfig());
  chain::Ledger ledger = gen.GenerateLedger(100);
  const chain::AccountId hub = gen.hub_account();
  uint64_t touching_hub = 0;
  ledger.ForEachTransaction([&](const chain::Transaction& tx) {
    for (chain::AccountId a : tx.accounts()) {
      if (a == hub) {
        ++touching_hub;
        break;
      }
    }
  });
  const double share = static_cast<double>(touching_hub) /
                       static_cast<double>(ledger.num_transactions());
  EXPECT_GT(share, 0.09);
  EXPECT_LT(share, 0.20);  // hub_share + incidental community-0 traffic.
}

TEST(EthereumLikeTest, LongTailActivity) {
  EthereumLikeGenerator gen(TestConfig());
  chain::Ledger ledger = gen.GenerateLedger(100);
  graph::TransactionGraph g = graph::BuildTransactionGraph(ledger);
  graph::GraphStats stats =
      graph::ComputeGraphStats(graph::CsrGraph::FromGraph(g));
  // Strong skew: most accounts barely transact, a few dominate.
  EXPECT_GT(stats.strength_gini, 0.5);
  EXPECT_GT(stats.low_degree_fraction, 0.3);
  EXPECT_EQ(stats.max_strength_node, gen.hub_account());
}

TEST(EthereumLikeTest, CommunityStructureIsDetectable) {
  // The intra-community bias must leave structure a community detector can
  // find: high Louvain modularity on the generated transaction graph.
  EthereumLikeConfig config = TestConfig();
  config.hub_share = 0.0;  // Isolate the community effect.
  EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(100);
  graph::TransactionGraph g = graph::BuildTransactionGraph(ledger);
  auto csr = graph::CsrGraph::FromGraph(g);
  std::vector<graph::NodeId> order(csr.num_nodes());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<graph::NodeId>(i);
  }
  auto louvain = graph::RunLouvain(csr, order);
  EXPECT_GT(louvain.modularity, 0.5);
}

TEST(EthereumLikeTest, SelfLoopsAppearAtConfiguredRate) {
  EthereumLikeConfig config = TestConfig();
  config.self_loop_rate = 0.05;
  EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(100);
  uint64_t self_loops = 0;
  ledger.ForEachTransaction([&](const chain::Transaction& tx) {
    if (tx.IsSelfLoop()) ++self_loops;
  });
  const double rate = static_cast<double>(self_loops) /
                      static_cast<double>(ledger.num_transactions());
  EXPECT_NEAR(rate, 0.05, 0.02);
}

TEST(EthereumLikeTest, MultiPartyTransactionsAppear) {
  EthereumLikeConfig config = TestConfig();
  config.multi_party_rate = 0.2;
  EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(50);
  uint64_t multi = 0;
  uint64_t max_parties = 0;
  ledger.ForEachTransaction([&](const chain::Transaction& tx) {
    if (tx.NumDistinctAccounts() > 2) ++multi;
    max_parties = std::max<uint64_t>(max_parties, tx.NumDistinctAccounts());
  });
  EXPECT_GT(multi, 0u);
  EXPECT_LE(max_parties, config.max_parties);
}

TEST(EthereumLikeTest, LateBornAccountsOnlyAppearLater) {
  EthereumLikeConfig config = TestConfig();
  config.late_born_fraction = 0.4;
  EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(100);
  // Accounts seen in the first 10% vs the whole run: new accounts must
  // keep appearing (A-TxAllo's fuel).
  std::vector<bool> seen_early(gen.registry().size(), false);
  std::vector<bool> seen_total(gen.registry().size(), false);
  const auto& blocks = ledger.blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    for (const auto& tx : blocks[b].transactions()) {
      for (chain::AccountId a : tx.accounts()) {
        if (b < 10) seen_early[a] = true;
        seen_total[a] = true;
      }
    }
  }
  size_t early = 0, total = 0;
  for (size_t a = 0; a < seen_total.size(); ++a) {
    if (seen_early[a]) ++early;
    if (seen_total[a]) ++total;
  }
  EXPECT_GT(total, early + total / 20);  // Meaningfully more accounts later.
}

TEST(EthereumLikeTest, ContractAccountsAreMarked) {
  EthereumLikeGenerator gen(TestConfig());
  EXPECT_EQ(gen.registry().TypeOf(gen.hub_account()),
            chain::AccountType::kContract);
}

TEST(EthereumLikeConfigTest, DefaultConfigValidates) {
  EXPECT_TRUE(EthereumLikeConfig{}.Validate().ok());
  EXPECT_TRUE(TestConfig().Validate().ok());
}

TEST(EthereumLikeConfigTest, StructuralZerosAreInvalidArgument) {
  auto expect_invalid = [](EthereumLikeConfig config, const char* what) {
    SCOPED_TRACE(what);
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    // The message must name the offending field.
    EXPECT_NE(status.message().find(what), std::string::npos);
  };
  EthereumLikeConfig config = TestConfig();
  config.num_blocks = 0;
  expect_invalid(config, "num_blocks");
  config = TestConfig();
  config.txs_per_block = 0;
  expect_invalid(config, "txs_per_block");
  config = TestConfig();
  config.num_accounts = 1;
  expect_invalid(config, "num_accounts");
  config = TestConfig();
  config.num_communities = 0;
  expect_invalid(config, "num_communities");
  config = TestConfig();
  config.max_parties = 1;
  expect_invalid(config, "max_parties");
  config = TestConfig();
  config.initial_balance = -1;
  expect_invalid(config, "initial_balance");
}

TEST(EthereumLikeConfigTest, MoreCommunitiesThanAccountsIsInvalid) {
  EthereumLikeConfig config = TestConfig();
  config.num_accounts = 10;
  config.num_communities = 40;
  const Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(EthereumLikeConfigTest, FractionsMustStayInUnitInterval) {
  auto expect_invalid = [](EthereumLikeConfig config) {
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  };
  EthereumLikeConfig config = TestConfig();
  config.p_intra_community = 1.5;
  expect_invalid(config);
  config = TestConfig();
  config.hub_share = -0.25;
  expect_invalid(config);
  config = TestConfig();
  config.self_loop_rate = 2.0;
  expect_invalid(config);
  config = TestConfig();
  config.late_born_fraction = -0.01;
  expect_invalid(config);
  config = TestConfig();
  config.drift_fraction = 1.0001;
  expect_invalid(config);
}

TEST(EthereumLikeConfigTest, SkewsMustBeNonNegative) {
  EthereumLikeConfig config = TestConfig();
  config.community_size_skew = -0.5;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = TestConfig();
  config.member_activity_skew = -2.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = TestConfig();
  config.hub_sender_skew = -1.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace txallo::workload

// JoinGainBatch must be bit-identical to per-community JoinDelta — the
// G-TxAllo sweep switches between the two on a density heuristic, so any
// divergence would make the heuristic (a pure perf knob) change
// allocations. Randomized states cover under-capacity, exactly-at-capacity
// and clamped (overloaded) communities, negative-σ corner values, and every
// vector-width tail (k not a multiple of 4).
#include "txallo/core/gain.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "txallo/common/rng.h"

namespace txallo::core {
namespace {

using alloc::CommunityState;

CommunityState RandomState(Rng* rng, uint32_t k, double capacity) {
  CommunityState state;
  state.eta = 1.0 + rng->NextDouble() * 4.0;
  state.capacity = capacity;
  state.sigma.resize(k);
  state.lambda_hat.resize(k);
  for (uint32_t q = 0; q < k; ++q) {
    // Straddle the capacity clamp: roughly half the communities overloaded.
    state.sigma[q] = rng->NextDouble() * 2.0 * capacity;
    state.lambda_hat[q] = rng->NextDouble() * capacity;
  }
  return state;
}

TEST(GainBatchTest, BitIdenticalToScalarJoinDelta) {
  Rng rng(77);
  for (const uint32_t k : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 60u, 257u}) {
    for (int round = 0; round < 50; ++round) {
      CommunityState state = RandomState(&rng, k, 100.0);
      NodeProfile node{rng.NextDouble(), rng.NextDouble() * 20.0};
      std::vector<double> weight_to(k);
      for (double& w : weight_to) {
        w = rng.NextBounded(4) == 0 ? 0.0 : rng.NextDouble() * 8.0;
      }
      std::vector<double> gains(k, -1.0);
      JoinGainBatch(state, node, weight_to.data(), k, gains.data());
      for (uint32_t q = 0; q < k; ++q) {
        const double scalar =
            JoinDelta(state, q, node, weight_to[q]).throughput_gain;
        // Exact equality — same expression tree, element by element.
        EXPECT_EQ(gains[q], scalar) << "k=" << k << " q=" << q;
      }
    }
  }
}

TEST(GainBatchTest, ClampCornersMatchScalar) {
  CommunityState state;
  state.eta = 2.0;
  state.capacity = 10.0;
  // σ exactly at capacity, just above, zero, and negative (the clamp's
  // σ <= 0 escape), Λ̂ mixed.
  state.sigma = {10.0, 10.0 + 1e-12, 0.0, -5.0, 25.0};
  state.lambda_hat = {4.0, 4.0, 0.0, 1.0, 9.0};
  NodeProfile node{0.25, 3.0};
  const std::vector<double> weight_to = {0.0, 1.0, 2.0, 0.5, 4.0};
  const auto k = static_cast<uint32_t>(state.sigma.size());
  std::vector<double> gains(k);
  JoinGainBatch(state, node, weight_to.data(), k, gains.data());
  for (uint32_t q = 0; q < k; ++q) {
    EXPECT_EQ(gains[q], JoinDelta(state, q, node, weight_to[q]).throughput_gain)
        << "q=" << q;
  }
}

TEST(GainBatchTest, ZeroCommunitiesIsANoop) {
  CommunityState state;
  state.eta = 2.0;
  state.capacity = 10.0;
  NodeProfile node{0.0, 0.0};
  JoinGainBatch(state, node, nullptr, 0, nullptr);  // Must not touch memory.
}

}  // namespace
}  // namespace txallo::core

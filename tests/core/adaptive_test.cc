#include "txallo/core/adaptive.h"

#include <gtest/gtest.h>

#include <numeric>

#include "txallo/graph/builder.h"

namespace txallo::core {
namespace {

using alloc::Allocation;
using alloc::AllocationParams;
using alloc::CommunityState;
using graph::NodeId;
using graph::TransactionGraph;

AllocationParams Params(uint32_t k, double eta, double capacity) {
  AllocationParams p;
  p.num_shards = k;
  p.eta = eta;
  p.capacity = capacity;
  p.epsilon = 1e-9;
  return p;
}

TEST(AdaptiveTxAlloTest, NewNodeJoinsItsNeighborsCommunity) {
  TransactionGraph g;
  g.AddEdge(0, 1, 5.0);
  g.AddEdge(2, 3, 5.0);
  // New node 4 strongly attached to the {2,3} community.
  g.AddEdge(4, 2, 3.0);
  g.AddEdge(4, 3, 3.0);
  g.Consolidate();

  AllocationParams params = Params(2, 2.0, 100.0);
  Allocation a(5, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);  // Node 4 is new / unassigned.
  CommunityState state = alloc::ComputeCommunityState(g, a, params);

  AdaptiveRunInfo info;
  ASSERT_TRUE(RunAdaptiveTxAllo(g, {4}, params, {}, &a, &state, &info).ok());
  EXPECT_EQ(a.shard_of(4), 1u);
  EXPECT_EQ(info.new_nodes, 1u);
  EXPECT_EQ(info.touched_nodes, 1u);
}

TEST(AdaptiveTxAlloTest, DisconnectedNewNodeFallsBackToAllCommunities) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.EnsureNodeCount(3);  // Node 2 isolated (appeared in a self-loop-free way).
  g.Consolidate();
  AllocationParams params = Params(2, 2.0, 100.0);
  Allocation a(3, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  CommunityState state = alloc::ComputeCommunityState(g, a, params);
  ASSERT_TRUE(RunAdaptiveTxAllo(g, {2}, params, {}, &a, &state).ok());
  EXPECT_TRUE(a.IsAssigned(2));
}

TEST(AdaptiveTxAlloTest, OnlyTouchedNodesMayMove) {
  // A-TxAllo restricted to V̂ must never reassign accounts outside V̂.
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  g.AddEdge(1, 2, 4.0);  // Strong pull between the pairs.
  g.Consolidate();
  AllocationParams params = Params(2, 3.0, 100.0);
  Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  CommunityState state = alloc::ComputeCommunityState(g, a, params);
  const auto shard0_before = a.shard_of(0);
  const auto shard3_before = a.shard_of(3);
  ASSERT_TRUE(RunAdaptiveTxAllo(g, {1, 2}, params, {}, &a, &state).ok());
  EXPECT_EQ(a.shard_of(0), shard0_before);
  EXPECT_EQ(a.shard_of(3), shard3_before);
}

TEST(AdaptiveTxAlloTest, ThroughputDoesNotDecrease) {
  TransactionGraph g;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) g.AddEdge(u, v, 1.0);
  }
  for (NodeId u = 6; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) g.AddEdge(u, v, 1.0);
  }
  g.AddEdge(0, 6, 0.5);
  g.Consolidate();
  AllocationParams params = Params(2, 2.0, g.TotalWeight() / 2.0);
  // Deliberately bad previous allocation: interleaved.
  Allocation a(12, 2);
  for (NodeId v = 0; v < 12; ++v) a.Assign(v, v % 2);
  CommunityState state = alloc::ComputeCommunityState(g, a, params);
  const double before = state.TotalThroughput();
  std::vector<NodeId> all(12);
  std::iota(all.begin(), all.end(), 0);
  AdaptiveRunInfo info;
  ASSERT_TRUE(RunAdaptiveTxAllo(g, all, params, {}, &a, &state, &info).ok());
  EXPECT_GE(info.final_throughput, before - 1e-9);
  EXPECT_GT(info.final_throughput, before);  // Plenty of gain available.
}

TEST(AdaptiveTxAlloTest, StateStaysConsistentWithScratchRecomputation) {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(3, 4, 2.0);
  g.AddEdge(2, 3, 0.5);
  g.AddSelfLoop(2, 0.7);
  g.Consolidate();
  AllocationParams params = Params(3, 2.5, 3.0);
  Allocation a(5, 3);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(3, 1);
  a.Assign(4, 1);  // Node 2 new.
  CommunityState state = alloc::ComputeCommunityState(g, a, params);
  ASSERT_TRUE(RunAdaptiveTxAllo(g, {2, 1, 3}, params, {}, &a, &state).ok());
  CommunityState scratch = alloc::ComputeCommunityState(g, a, params);
  for (uint32_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(state.sigma[c], scratch.sigma[c], 1e-9) << "c=" << c;
    EXPECT_NEAR(state.lambda_hat[c], scratch.lambda_hat[c], 1e-9);
  }
}

TEST(AdaptiveTxAlloTest, RejectsShardCountMismatch) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.Consolidate();
  AllocationParams params = Params(3, 2.0, 10.0);
  Allocation a(2, 3);
  a.Assign(0, 0);
  a.Assign(1, 1);
  CommunityState state;  // Wrong size (empty).
  state.eta = params.eta;
  state.capacity = params.capacity;
  Status st = RunAdaptiveTxAllo(g, {0}, params, {}, &a, &state);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(AdaptiveTxAlloTest, RejectsUngrownAllocation) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.Consolidate();
  AllocationParams params = Params(2, 2.0, 10.0);
  Allocation a(2, 2);  // Graph has 3 nodes.
  a.Assign(0, 0);
  a.Assign(1, 1);
  CommunityState state = alloc::ComputeCommunityState(g, a, params);
  Status st = RunAdaptiveTxAllo(g, {2}, params, {}, &a, &state);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(AdaptiveTxAlloTest, EmptyTouchedSetIsANoOp) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.Consolidate();
  AllocationParams params = Params(2, 2.0, 10.0);
  Allocation a(2, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  CommunityState state = alloc::ComputeCommunityState(g, a, params);
  Allocation before = a;
  AdaptiveRunInfo info;
  ASSERT_TRUE(RunAdaptiveTxAllo(g, {}, params, {}, &a, &state, &info).ok());
  EXPECT_TRUE(a == before);
  EXPECT_EQ(info.new_nodes, 0u);
}

}  // namespace
}  // namespace txallo::core

#include "txallo/core/gain.h"

#include <gtest/gtest.h>

#include "txallo/graph/graph.h"

namespace txallo::core {
namespace {

using alloc::Allocation;
using alloc::AllocationParams;
using alloc::CommunityState;
using graph::TransactionGraph;

AllocationParams Params(uint32_t k, double eta, double capacity) {
  AllocationParams p;
  p.num_shards = k;
  p.eta = eta;
  p.capacity = capacity;
  p.epsilon = 0.0;
  return p;
}

// Fixture graph: 0-1 (w=2), 1-2 (w=1), 2-3 (w=3), self-loop on 1 (w=0.5).
TransactionGraph FixtureGraph() {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 3, 3.0);
  g.AddSelfLoop(1, 0.5);
  g.Consolidate();
  return g;
}

NodeProfile ProfileOf(const TransactionGraph& g, graph::NodeId v) {
  return NodeProfile{g.SelfLoop(v), g.Strength(v)};
}

double WeightToCommunity(const TransactionGraph& g, graph::NodeId v,
                         const Allocation& a, uint32_t c) {
  double w = 0.0;
  for (const graph::Neighbor& nb : g.Neighbors(v)) {
    if (a.IsAssigned(nb.node) && a.shard_of(nb.node) == c) w += nb.weight;
  }
  return w;
}

TEST(GainTest, JoinDeltaMatchesFromScratchRecomputation) {
  TransactionGraph g = FixtureGraph();
  AllocationParams params = Params(2, 3.0, 1e9);
  // Node 1 unassigned; others: {0}->0, {2,3}->1.
  Allocation before(4, 2);
  before.Assign(0, 0);
  before.Assign(2, 1);
  before.Assign(3, 1);
  CommunityState state = ComputeCommunityState(g, before, params);

  // Hypothetically join node 1 into community 0.
  NodeProfile node = ProfileOf(g, 1);
  const double w_to_0 = WeightToCommunity(g, 1, before, 0);
  CommunityDelta delta = JoinDelta(state, 0, node, w_to_0);

  Allocation after = before;
  after.Assign(1, 0);
  CommunityState next = ComputeCommunityState(g, after, params);
  EXPECT_NEAR(state.sigma[0] + delta.d_sigma, next.sigma[0], 1e-12);
  EXPECT_NEAR(state.lambda_hat[0] + delta.d_lambda_hat, next.lambda_hat[0],
              1e-12);
  EXPECT_NEAR(delta.throughput_gain,
              next.ThroughputOf(0) - state.ThroughputOf(0), 1e-12);
}

TEST(GainTest, LeaveDeltaMatchesFromScratchRecomputation) {
  TransactionGraph g = FixtureGraph();
  AllocationParams params = Params(2, 4.0, 1e9);
  Allocation before(4, 2);
  before.Assign(0, 0);
  before.Assign(1, 0);
  before.Assign(2, 1);
  before.Assign(3, 1);
  CommunityState state = ComputeCommunityState(g, before, params);

  NodeProfile node = ProfileOf(g, 1);
  const double w_to_own = WeightToCommunity(g, 1, before, 0);
  CommunityDelta delta = LeaveDelta(state, 0, node, w_to_own);

  // After leaving, node 1's edges to community 0 become cross for shard 0
  // and its other edges vanish from shard 0 entirely. Recompute with node 1
  // unassigned (an unassigned neighbor counts as cross — same as "other").
  Allocation after(4, 2);
  after.Assign(0, 0);
  after.Assign(2, 1);
  after.Assign(3, 1);
  CommunityState next = ComputeCommunityState(g, after, params);
  EXPECT_NEAR(state.sigma[0] + delta.d_sigma, next.sigma[0], 1e-12);
  EXPECT_NEAR(state.lambda_hat[0] + delta.d_lambda_hat, next.lambda_hat[0],
              1e-12);
}

TEST(GainTest, MoveGainIsLeavePlusJoin) {
  TransactionGraph g = FixtureGraph();
  AllocationParams params = Params(2, 2.0, 1e9);
  Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  CommunityState state = ComputeCommunityState(g, a, params);
  NodeProfile node = ProfileOf(g, 1);
  const double w_p = WeightToCommunity(g, 1, a, 0);
  const double w_q = WeightToCommunity(g, 1, a, 1);
  const double gain = MoveGain(state, 0, 1, node, w_p, w_q);
  EXPECT_NEAR(gain,
              LeaveDelta(state, 0, node, w_p).throughput_gain +
                  JoinDelta(state, 1, node, w_q).throughput_gain,
              1e-15);
}

TEST(GainTest, MoveGainMatchesTotalThroughputChange) {
  // End-to-end: Δ(i,p,q)Λ must equal Λ(after) - Λ(before) over ALL
  // communities — this is Lemma 1 plus the delta formulas in one check.
  TransactionGraph g = FixtureGraph();
  for (double eta : {1.0, 2.0, 5.0}) {
    for (double capacity : {1.5, 3.0, 1e9}) {
      AllocationParams params = Params(3, eta, capacity);
      Allocation a(4, 3);
      a.Assign(0, 0);
      a.Assign(1, 0);
      a.Assign(2, 1);
      a.Assign(3, 2);
      CommunityState state = ComputeCommunityState(g, a, params);
      NodeProfile node = ProfileOf(g, 2);
      const double w_p = WeightToCommunity(g, 2, a, 1);
      const double w_q = WeightToCommunity(g, 2, a, 2);
      const double gain = MoveGain(state, 1, 2, node, w_p, w_q);

      Allocation moved = a;
      moved.Assign(2, 2);
      CommunityState next = ComputeCommunityState(g, moved, params);
      EXPECT_NEAR(gain, next.TotalThroughput() - state.TotalThroughput(),
                  1e-9)
          << "eta=" << eta << " capacity=" << capacity;
    }
  }
}

TEST(GainTest, Lemma1UninvolvedCommunitiesUnchanged) {
  TransactionGraph g = FixtureGraph();
  AllocationParams params = Params(3, 3.0, 2.0);
  Allocation a(4, 3);
  a.Assign(0, 0);
  a.Assign(1, 1);
  a.Assign(2, 1);
  a.Assign(3, 2);
  CommunityState state = ComputeCommunityState(g, a, params);
  Allocation moved = a;
  moved.Assign(1, 0);  // Move node 1 from community 1 to 0.
  CommunityState next = ComputeCommunityState(g, moved, params);
  // Community 2 is untouched by the move (Lemma 1).
  EXPECT_NEAR(state.sigma[2], next.sigma[2], 1e-12);
  EXPECT_NEAR(state.lambda_hat[2], next.lambda_hat[2], 1e-12);
  EXPECT_NEAR(state.ThroughputOf(2), next.ThroughputOf(2), 1e-12);
}

TEST(GainTest, ApplyJoinThenLeaveIsIdentity) {
  TransactionGraph g = FixtureGraph();
  AllocationParams params = Params(2, 2.5, 4.0);
  Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  CommunityState state = ComputeCommunityState(g, a, params);
  CommunityState original = state;
  NodeProfile node = ProfileOf(g, 1);
  const double w_to_0 = WeightToCommunity(g, 1, a, 0);
  ApplyJoin(&state, 0, node, w_to_0);
  ApplyLeave(&state, 0, node, w_to_0);
  EXPECT_NEAR(state.sigma[0], original.sigma[0], 1e-12);
  EXPECT_NEAR(state.lambda_hat[0], original.lambda_hat[0], 1e-12);
}

TEST(GainTest, JoiningOverloadedCommunityIsPenalized) {
  // The capacity clamp is what makes TxAllo workload-aware: joining an
  // overloaded community must look worse than joining an idle one even
  // with equal connectivity.
  CommunityState state;
  state.eta = 2.0;
  state.capacity = 10.0;
  state.sigma = {30.0, 1.0};       // Community 0 badly overloaded.
  state.lambda_hat = {20.0, 1.0};
  NodeProfile node{0.0, 1.0};       // Unit strength, no self-loop.
  const double gain_overloaded = JoinDelta(state, 0, node, 0.5).throughput_gain;
  const double gain_idle = JoinDelta(state, 1, node, 0.5).throughput_gain;
  EXPECT_GT(gain_idle, gain_overloaded);
}

}  // namespace
}  // namespace txallo::core

#include "txallo/core/controller.h"

#include <gtest/gtest.h>

#include "txallo/workload/ethereum_like.h"

namespace txallo::core {
namespace {

using alloc::AllocationParams;

workload::EthereumLikeConfig SmallConfig() {
  workload::EthereumLikeConfig config;
  config.num_blocks = 60;
  config.txs_per_block = 50;
  config.num_accounts = 800;
  config.num_communities = 16;
  config.seed = 7;
  return config;
}

TEST(ControllerTest, ApplyBlocksThenGlobalStep) {
  workload::EthereumLikeGenerator gen(SmallConfig());
  AllocationParams params = AllocationParams::ForExperiment(1, 4, 2.0);
  TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 20; ++b) controller.ApplyBlock(gen.NextBlock());
  EXPECT_EQ(controller.transactions_applied(), 20u * 50u);
  auto info = controller.StepGlobal();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(controller.allocation().Validate().ok());
  EXPECT_GT(controller.CurrentThroughput(), 0.0);
}

TEST(ControllerTest, IncrementalStateMatchesScratchAfterBlocks) {
  // The controller maintains σ/Λ̂ incrementally while blocks stream in;
  // it must agree with the from-scratch oracle at any point.
  workload::EthereumLikeGenerator gen(SmallConfig());
  AllocationParams params = AllocationParams::ForExperiment(1, 4, 2.0);
  TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 10; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepGlobal().ok());

  for (int b = 0; b < 10; ++b) controller.ApplyBlock(gen.NextBlock());
  // Snapshot incremental state, then recompute from scratch and compare.
  alloc::CommunityState incremental = controller.state();
  TxAlloController copy = controller;  // Cheap enough at this scale.
  copy.RecomputeState();
  for (uint32_t c = 0; c < params.num_shards; ++c) {
    EXPECT_NEAR(incremental.sigma[c], copy.state().sigma[c], 1e-6);
    EXPECT_NEAR(incremental.lambda_hat[c], copy.state().lambda_hat[c], 1e-6);
  }
}

TEST(ControllerTest, AdaptiveStepAssignsNewAccounts) {
  workload::EthereumLikeGenerator gen(SmallConfig());
  AllocationParams params = AllocationParams::ForExperiment(1, 4, 2.0);
  TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 30; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepGlobal().ok());

  for (int b = 0; b < 10; ++b) controller.ApplyBlock(gen.NextBlock());
  auto info = controller.StepAdaptive();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->touched_nodes, 0u);
  // Every node that appeared in any applied block must now be assigned.
  const auto& graph = controller.graph();
  const auto& allocation = controller.allocation();
  for (size_t v = 0; v < graph.num_nodes(); ++v) {
    const auto id = static_cast<graph::NodeId>(v);
    if (graph.Strength(id) > 0.0 || graph.SelfLoop(id) > 0.0) {
      EXPECT_TRUE(allocation.IsAssigned(id)) << "node " << v;
    }
  }
}

TEST(ControllerTest, PendingTouchedNodesClearedByStep) {
  workload::EthereumLikeGenerator gen(SmallConfig());
  AllocationParams params = AllocationParams::ForExperiment(1, 2, 2.0);
  TxAlloController controller(&gen.registry(), params);
  controller.ApplyBlock(gen.NextBlock());
  EXPECT_FALSE(controller.PendingTouchedNodes().empty());
  ASSERT_TRUE(controller.StepAdaptive().ok());
  EXPECT_TRUE(controller.PendingTouchedNodes().empty());
}

TEST(ControllerTest, TouchedNodesAreHashOrderedAndUnique) {
  workload::EthereumLikeGenerator gen(SmallConfig());
  AllocationParams params = AllocationParams::ForExperiment(1, 2, 2.0);
  TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 5; ++b) controller.ApplyBlock(gen.NextBlock());
  auto touched = controller.PendingTouchedNodes();
  for (size_t i = 1; i < touched.size(); ++i) {
    const uint64_t ka = gen.registry().OrderKey(touched[i - 1]);
    const uint64_t kb = gen.registry().OrderKey(touched[i]);
    EXPECT_TRUE(ka < kb || (ka == kb && touched[i - 1] < touched[i]));
  }
}

TEST(ControllerTest, CapacityScalesWithTransactions) {
  workload::EthereumLikeGenerator gen(SmallConfig());
  AllocationParams params = AllocationParams::ForExperiment(1, 4, 2.0);
  TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 10; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepAdaptive().ok());
  // λ = |T|/k after the refresh.
  EXPECT_NEAR(controller.params().capacity,
              static_cast<double>(controller.transactions_applied()) / 4.0,
              1e-9);
}

TEST(ControllerTest, AdaptiveImprovesOverStaleAllocationCheaply) {
  // After drift, an adaptive step must not lose throughput, and it must be
  // far cheaper than the global step at the same ledger size.
  workload::EthereumLikeConfig config = SmallConfig();
  config.num_blocks = 100;
  workload::EthereumLikeGenerator gen(config);
  AllocationParams params = AllocationParams::ForExperiment(1, 4, 2.0);
  TxAlloController controller(&gen.registry(), params);
  for (int b = 0; b < 50; ++b) controller.ApplyBlock(gen.NextBlock());
  ASSERT_TRUE(controller.StepGlobal().ok());
  for (int b = 0; b < 25; ++b) controller.ApplyBlock(gen.NextBlock());
  const double before = controller.CurrentThroughput();
  auto info = controller.StepAdaptive();
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->final_throughput, before - 1e-6);
}

}  // namespace
}  // namespace txallo::core

#include "txallo/core/global.h"

#include <gtest/gtest.h>

#include <numeric>

#include "txallo/alloc/metrics.h"
#include "txallo/graph/builder.h"
#include "txallo/common/rng.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::core {
namespace {

using alloc::Allocation;
using alloc::AllocationParams;
using graph::NodeId;
using graph::TransactionGraph;

std::vector<NodeId> IdentityOrder(size_t n) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// Two 5-cliques bridged weakly — G-TxAllo with k=2 must split them apart.
TransactionGraph TwoCliqueGraph() {
  TransactionGraph g;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.AddEdge(u, v, 1.0);
  }
  for (NodeId u = 5; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) g.AddEdge(u, v, 1.0);
  }
  g.AddEdge(0, 5, 0.1);
  g.Consolidate();
  return g;
}

TEST(GlobalTxAlloTest, SeparatesTwoCliques) {
  TransactionGraph g = TwoCliqueGraph();
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 2.0;
  params.capacity = g.TotalWeight() / 2.0;
  params.epsilon = 1e-9;
  auto result = RunGlobalTxAllo(g, IdentityOrder(10), params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Allocation& a = result.value();
  ASSERT_TRUE(a.Validate().ok());
  // Each clique must be wholly inside one shard.
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(a.shard_of(v), a.shard_of(0));
  for (NodeId v = 6; v < 10; ++v) EXPECT_EQ(a.shard_of(v), a.shard_of(5));
  EXPECT_NE(a.shard_of(0), a.shard_of(5));
}

TEST(GlobalTxAlloTest, RunInfoIsFilled) {
  TransactionGraph g = TwoCliqueGraph();
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 2.0;
  params.capacity = g.TotalWeight() / 2.0;
  params.epsilon = 1e-9;
  GlobalRunInfo info;
  auto result = RunGlobalTxAllo(g, IdentityOrder(10), params, {}, &info);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(info.louvain_communities, 0u);
  EXPECT_GE(info.sweeps, 1);
  EXPECT_GE(info.final_throughput, info.initial_throughput - 1e-9);
  EXPECT_GT(info.total_seconds, 0.0);
}

TEST(GlobalTxAlloTest, SingleShardPutsEverythingTogether) {
  TransactionGraph g = TwoCliqueGraph();
  AllocationParams params;
  params.num_shards = 1;
  params.eta = 2.0;
  params.capacity = g.TotalWeight();
  params.epsilon = 1e-9;
  auto result = RunGlobalTxAllo(g, IdentityOrder(10), params);
  ASSERT_TRUE(result.ok());
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(result->shard_of(v), 0u);
}

TEST(GlobalTxAlloTest, RejectsUnconsolidatedGraph) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);  // Not consolidated.
  AllocationParams params = AllocationParams::ForExperiment(1, 2, 2.0);
  auto result = RunGlobalTxAllo(g, IdentityOrder(2), params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GlobalTxAlloTest, RejectsBadNodeOrder) {
  TransactionGraph g = TwoCliqueGraph();
  AllocationParams params = AllocationParams::ForExperiment(10, 2, 2.0);
  auto result = RunGlobalTxAllo(g, IdentityOrder(3), params);  // Wrong size.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GlobalTxAlloTest, RejectsInvalidParams) {
  TransactionGraph g = TwoCliqueGraph();
  AllocationParams params;
  params.num_shards = 0;
  auto result = RunGlobalTxAllo(g, IdentityOrder(10), params);
  ASSERT_FALSE(result.ok());
}

TEST(GlobalTxAlloTest, IsolatedNodesGetAssigned) {
  TransactionGraph g = TwoCliqueGraph();
  g.EnsureNodeCount(15);  // Nodes 10-14 isolated.
  g.Consolidate();
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 2.0;
  params.capacity = g.TotalWeight() / 2.0;
  params.epsilon = 1e-9;
  auto result = RunGlobalTxAllo(g, IdentityOrder(15), params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Validate().ok());
}

TEST(GlobalTxAlloTest, MoreShardsThanLouvainCommunitiesStillValid) {
  // l < k: the paper pads with empty shards; the mapping must stay valid.
  TransactionGraph g = TwoCliqueGraph();
  AllocationParams params;
  params.num_shards = 7;  // Louvain will find ~2 communities.
  params.eta = 2.0;
  params.capacity = g.TotalWeight() / 7.0;
  params.epsilon = 1e-9;
  auto result = RunGlobalTxAllo(g, IdentityOrder(10), params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Validate().ok());
}

TEST(GlobalTxAlloTest, HashInitAblationProducesValidAllocation) {
  TransactionGraph g = TwoCliqueGraph();
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 2.0;
  params.capacity = g.TotalWeight() / 2.0;
  params.epsilon = 1e-9;
  GlobalOptions options;
  options.hash_initialization = true;
  auto result = RunGlobalTxAllo(g, IdentityOrder(10), params, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Validate().ok());
}

TEST(GlobalTxAlloTest, FullSearchAblationMatchesOrBeatsCandidates) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 40;
  config.txs_per_block = 100;
  config.num_accounts = 1'000;
  config.num_communities = 20;
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(config.num_blocks);
  TransactionGraph g = graph::BuildTransactionGraph(ledger);
  g.EnsureNodeCount(gen.registry().size());
  g.Consolidate();
  AllocationParams params = AllocationParams::ForExperiment(
      ledger.num_transactions(), 4, 2.0);

  GlobalOptions candidates;
  GlobalOptions full;
  full.search_all_communities = true;
  auto order = IdentityOrder(g.num_nodes());
  GlobalRunInfo info_c, info_f;
  auto rc = RunGlobalTxAllo(g, order, params, candidates, &info_c);
  auto rf = RunGlobalTxAllo(g, order, params, full, &info_f);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rf.ok());
  // The candidate restriction (Eq. 9) must cost almost nothing in Λ.
  EXPECT_NEAR(info_c.final_throughput, info_f.final_throughput,
              0.02 * info_f.final_throughput);
}

TEST(GlobalTxAlloTest, ThroughputNeverDecreasesAcrossPhases) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 30;
  config.txs_per_block = 80;
  config.num_accounts = 600;
  config.num_communities = 12;
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(config.num_blocks);
  TransactionGraph g = graph::BuildTransactionGraph(ledger);
  g.EnsureNodeCount(gen.registry().size());
  g.Consolidate();
  for (uint32_t k : {2u, 4u, 8u}) {
    AllocationParams params =
        AllocationParams::ForExperiment(ledger.num_transactions(), k, 3.0);
    GlobalRunInfo info;
    auto result =
        RunGlobalTxAllo(g, IdentityOrder(g.num_nodes()), params, {}, &info);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(info.final_throughput, info.initial_throughput - params.epsilon)
        << "k=" << k;
  }
}

// Property sweep: OptimizeSweeps never decreases the model throughput,
// starting from arbitrary (hash) allocations, across (k, eta, seed).
class SweepMonotonicity
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, uint64_t>> {
};

TEST_P(SweepMonotonicity, ThroughputNeverDecreases) {
  auto [k, eta, seed] = GetParam();
  workload::EthereumLikeConfig config;
  config.num_blocks = 25;
  config.txs_per_block = 80;
  config.num_accounts = 700;
  config.num_communities = 14;
  config.seed = seed;
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(config.num_blocks);
  TransactionGraph g = graph::BuildTransactionGraph(ledger);
  g.EnsureNodeCount(gen.registry().size());
  g.Consolidate();

  AllocationParams params =
      AllocationParams::ForExperiment(ledger.num_transactions(), k, eta);
  Allocation allocation(g.num_nodes(), k);
  Rng rng(seed);
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    allocation.Assign(static_cast<NodeId>(v),
                      static_cast<alloc::ShardId>(rng.NextBounded(k)));
  }
  alloc::CommunityState state =
      alloc::ComputeCommunityState(g, allocation, params);
  const double before = state.TotalThroughput();
  auto order = IdentityOrder(g.num_nodes());
  OptimizeSweeps(g, order, params, {}, &allocation, &state);
  EXPECT_GE(state.TotalThroughput(), before - 1e-9)
      << "k=" << k << " eta=" << eta << " seed=" << seed;
  // Running state must still agree with the from-scratch oracle.
  alloc::CommunityState oracle =
      alloc::ComputeCommunityState(g, allocation, params);
  for (uint32_t c = 0; c < k; ++c) {
    EXPECT_NEAR(state.sigma[c], oracle.sigma[c],
                1e-6 * (1.0 + oracle.sigma[c]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SweepMonotonicity,
    ::testing::Combine(::testing::Values(2u, 6u, 12u),
                       ::testing::Values(2.0, 8.0),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace txallo::core

// Mempool unit tests: seal/dispatch ordering, every admission-control
// check and policy, producer-side backpressure (blocking and rejecting),
// TTL expiry, and physical compaction (direct and via MempoolCleaner)
// being logically invisible.
#include "txallo/mempool/mempool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "txallo/chain/transaction.h"
#include "txallo/mempool/cleaner.h"
#include "txallo/mempool/offered_load.h"

namespace txallo::mempool {
namespace {

chain::Transaction Tx(chain::AccountId from, chain::AccountId to) {
  return chain::Transaction::Simple(from, to);
}

// Submits with explicit tags; payer (admission identity) is `from`.
void Put(Mempool& pool, uint64_t seq, uint64_t fee, chain::AccountId from = 1,
         uint64_t tick = 0) {
  ASSERT_TRUE(pool.Submit(Tx(from, from + 100), fee, tick, seq).ok());
}

std::vector<uint64_t> Seqs(const std::vector<PendingTx>& batch) {
  std::vector<uint64_t> seqs;
  for (const PendingTx& tx : batch) seqs.push_back(tx.pool_seq);
  return seqs;
}

TEST(MempoolTest, DispatchOrderIsFeeDescThenSeqAsc) {
  Mempool pool(MempoolConfig{});
  Put(pool, 0, 5);
  Put(pool, 1, 9);
  Put(pool, 2, 5);
  Put(pool, 3, 9);
  Put(pool, 4, 1);
  EXPECT_EQ(pool.SealTick(0), 5u);
  EXPECT_EQ(Seqs(pool.TakeBatch(100)),
            (std::vector<uint64_t>{1, 3, 0, 2, 4}));
  EXPECT_EQ(pool.live_size(), 0u);
}

TEST(MempoolTest, DispatchOrderIgnoresSubmissionInterleaving) {
  // The same five arrivals staged in two different orders dispatch
  // identically: pool_seq, not staging order, is the tie-break.
  std::vector<uint64_t> first;
  {
    Mempool pool(MempoolConfig{});
    for (uint64_t seq : {4, 0, 3, 1, 2}) Put(pool, seq, 7);
    pool.SealTick(0);
    first = Seqs(pool.TakeBatch(100));
  }
  Mempool pool(MempoolConfig{});
  for (uint64_t seq : {0, 1, 2, 3, 4}) Put(pool, seq, 7);
  pool.SealTick(0);
  EXPECT_EQ(Seqs(pool.TakeBatch(100)), first);
  EXPECT_EQ(first, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(MempoolTest, TakeBatchHonorsLimitAndLeavesRestLive) {
  Mempool pool(MempoolConfig{});
  for (uint64_t seq = 0; seq < 6; ++seq) Put(pool, seq, 10 - seq);
  pool.SealTick(0);
  EXPECT_EQ(Seqs(pool.TakeBatch(2)), (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(pool.live_size(), 4u);
  EXPECT_EQ(Seqs(pool.TakeBatch(100)), (std::vector<uint64_t>{2, 3, 4, 5}));
}

TEST(MempoolTest, CapacityBoundDropsLateArrivals) {
  MempoolConfig config;
  config.capacity = 3;
  Mempool pool(config);
  for (uint64_t seq = 0; seq < 5; ++seq) Put(pool, seq, seq + 1, 1 + seq);
  EXPECT_EQ(pool.SealTick(0), 3u);
  EXPECT_EQ(pool.live_size(), 3u);
  EXPECT_EQ(pool.stats().dropped_capacity, 2u);
  // Admission walks arrivals in seq order, so the first three got in;
  // dispatch then orders those by fee descending.
  EXPECT_EQ(Seqs(pool.TakeBatch(100)), (std::vector<uint64_t>{2, 1, 0}));
}

TEST(MempoolTest, PerAccountPendingLimit) {
  MempoolConfig config;
  config.account_pending_limit = 2;
  Mempool pool(config);
  for (uint64_t seq = 0; seq < 4; ++seq) Put(pool, seq, 5, /*from=*/7);
  Put(pool, 4, 5, /*from=*/8);
  EXPECT_EQ(pool.SealTick(0), 3u);
  EXPECT_EQ(pool.stats().dropped_account_pending, 2u);
  // Dispatch frees the payer's slots for the next seal.
  pool.TakeBatch(100);
  Put(pool, 5, 5, /*from=*/7);
  EXPECT_EQ(pool.SealTick(1), 1u);
}

TEST(MempoolTest, PerAccountRateLimitResetsEachTick) {
  MempoolConfig config;
  config.account_rate_limit = 1;
  Mempool pool(config);
  Put(pool, 0, 5, /*from=*/7);
  Put(pool, 1, 5, /*from=*/7);
  EXPECT_EQ(pool.SealTick(0), 1u);
  EXPECT_EQ(pool.stats().dropped_account_rate, 1u);
  // Same account next tick: the per-tick rate budget is fresh.
  Put(pool, 2, 5, /*from=*/7);
  EXPECT_EQ(pool.SealTick(1), 1u);
}

TEST(MempoolTest, BlockPolicyDefersAndRetriesAheadOfNewerArrivals) {
  MempoolConfig config;
  config.capacity = 2;
  config.policy = AdmissionPolicy::kBlock;
  Mempool pool(config);
  for (uint64_t seq = 0; seq < 4; ++seq) Put(pool, seq, 9 - seq, 1 + seq);
  EXPECT_EQ(pool.SealTick(0), 2u);
  EXPECT_EQ(pool.deferred_size(), 2u);
  EXPECT_EQ(pool.stats().deferred, 2u);
  AdmissionStats stats = pool.stats();
  EXPECT_EQ(stats.dropped_capacity + stats.dropped_account_pending +
                stats.dropped_account_rate,
            0u);
  // Drain the pool; the deferred pair (seqs 2,3) admits at the next seal,
  // ahead of a newer arrival that no longer fits.
  pool.TakeBatch(100);
  Put(pool, 4, 9, /*from=*/9);
  EXPECT_EQ(pool.SealTick(1), 2u);
  EXPECT_EQ(Seqs(pool.TakeBatch(100)), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(pool.deferred_size(), 1u);
}

TEST(MempoolTest, TtlExpiresStaleEntriesAtSeal) {
  MempoolConfig config;
  config.ttl_ticks = 2;
  Mempool pool(config);
  Put(pool, 0, 5, 1, /*tick=*/0);
  pool.SealTick(0);  // admit_tick = 0
  EXPECT_EQ(pool.live_size(), 1u);
  pool.SealTick(1);
  EXPECT_EQ(pool.live_size(), 1u);
  pool.SealTick(3);  // age 3 > ttl 2
  EXPECT_EQ(pool.live_size(), 0u);
  EXPECT_EQ(pool.stats().expired, 1u);
  EXPECT_TRUE(pool.TakeBatch(100).empty());
}

TEST(MempoolTest, TimestampsRecordSubmitAndAdmitTicks) {
  Mempool pool(MempoolConfig{});
  Put(pool, 0, 5, 1, /*tick=*/4);
  pool.SealTick(7);
  std::vector<PendingTx> batch = pool.TakeBatch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].submit_tick, 4u);
  EXPECT_EQ(batch[0].admit_tick, 7u);
}

TEST(MempoolTest, TrySubmitBackpressureWhenStagingFull) {
  MempoolConfig config;
  config.staging_capacity = 2;
  Mempool pool(config);
  EXPECT_TRUE(pool.TrySubmit(Tx(1, 2), 5, 0, 0));
  EXPECT_TRUE(pool.TrySubmit(Tx(1, 2), 5, 0, 1));
  EXPECT_FALSE(pool.TrySubmit(Tx(1, 2), 5, 0, 2));
  EXPECT_EQ(pool.stats().dropped_backpressure, 1u);
  EXPECT_EQ(pool.stats().submitted, 3u);
  // Sealing makes room again.
  pool.SealTick(0);
  EXPECT_TRUE(pool.TrySubmit(Tx(1, 2), 5, 1, 3));
}

TEST(MempoolTest, BlockingSubmitWaitsForSealAndShutdownUnblocks) {
  MempoolConfig config;
  config.staging_capacity = 1;
  Mempool pool(config);
  ASSERT_TRUE(pool.Submit(Tx(1, 2), 5, 0, 0).ok());

  // A second submit must block until the driver seals.
  std::atomic<bool> second_done{false};
  std::thread blocked([&] {
    EXPECT_TRUE(pool.Submit(Tx(1, 2), 5, 0, 1).ok());
    second_done.store(true);
  });
  // Give the thread a moment to reach the wait; even if the seal wins the
  // race the submit lands in the drained staging buffer and the test still
  // converges at the next seal.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.SealTick(0);
  blocked.join();
  EXPECT_TRUE(second_done.load());
  pool.SealTick(1);
  EXPECT_EQ(pool.live_size(), 2u);

  // Fill staging again, then Shutdown: the blocked submit fails instead of
  // hanging, and later submits fail immediately.
  ASSERT_TRUE(pool.Submit(Tx(1, 2), 5, 2, 2).ok());
  std::thread doomed([&] {
    EXPECT_FALSE(pool.Submit(Tx(1, 2), 5, 2, 3).ok());
  });
  pool.Shutdown();
  doomed.join();
  EXPECT_FALSE(pool.Submit(Tx(1, 2), 5, 2, 4).ok());
  EXPECT_FALSE(pool.TrySubmit(Tx(1, 2), 5, 2, 5));
}

TEST(MempoolTest, ReserveSequenceRangeIsContiguous) {
  Mempool pool(MempoolConfig{});
  EXPECT_EQ(pool.ReserveSequenceRange(4), 0u);
  EXPECT_EQ(pool.ReserveSequenceRange(1), 4u);
  EXPECT_EQ(pool.ReserveSequenceRange(3), 5u);
}

TEST(MempoolTest, CompactionReclaimsOnlyFullyDeadChunksAndChangesNothing) {
  MempoolConfig config;
  config.chunk_size = 4;
  Mempool pool(config);
  for (uint64_t seq = 0; seq < 8; ++seq) Put(pool, seq, 1 + seq % 3);
  pool.SealTick(0);
  // Dispatch six of eight: the first chunk (seqs of the four best... by
  // storage order, not priority) may or may not be fully dead — assert via
  // the pool's own accounting instead of guessing.
  pool.TakeBatch(6);
  const size_t dead_before = pool.dead_count();
  EXPECT_EQ(dead_before, 6u);
  const size_t reclaimed = pool.CompactOnce();
  // Whatever was reclaimed, the live transactions are untouched.
  EXPECT_EQ(pool.live_size(), 2u);
  EXPECT_EQ(pool.dead_count(), dead_before - 4 * reclaimed);
  std::vector<PendingTx> rest = pool.TakeBatch(100);
  EXPECT_EQ(rest.size(), 2u);
  // Now every entry is dead: both chunks are reclaimable wholesale.
  EXPECT_EQ(pool.CompactOnce(), 2u - reclaimed);
  EXPECT_EQ(pool.dead_count(), 0u);
}

TEST(MempoolTest, CleanerHookFiresAtThresholdOutsideLocks) {
  MempoolConfig config;
  config.chunk_size = 2;
  config.dead_compact_threshold = 3;
  Mempool pool(config);
  size_t fired = 0;
  size_t last_dead = 0;
  pool.SetCleanerHook([&](size_t dead) {
    ++fired;
    last_dead = dead;
    // Re-entering the pool from the hook must not deadlock.
    (void)pool.dead_count();
  });
  for (uint64_t seq = 0; seq < 4; ++seq) Put(pool, seq, 5);
  pool.SealTick(0);
  pool.TakeBatch(2);
  EXPECT_EQ(fired, 0u);
  pool.TakeBatch(2);
  EXPECT_EQ(fired, 1u);
  EXPECT_GE(last_dead, 3u);
}

TEST(MempoolCleanerTest, BackgroundCleanerReclaimsWithoutChangingOutputs) {
  MempoolConfig config;
  config.chunk_size = 2;
  config.dead_compact_threshold = 2;
  Mempool pool(config);
  MempoolCleaner cleaner(&pool);
  for (int round = 0; round < 50; ++round) {
    for (uint64_t i = 0; i < 4; ++i) {
      Put(pool, static_cast<uint64_t>(round) * 4 + i, 1 + i);
    }
    pool.SealTick(static_cast<uint64_t>(round));
    std::vector<PendingTx> batch = pool.TakeBatch(100);
    ASSERT_EQ(batch.size(), 4u);
  }
  // Give the cleaner a chance to drain, then verify it actually ran and
  // reclaimed: 100 chunks were filled and killed; whatever remains dead is
  // bounded by what the last nudge missed.
  while (cleaner.passes() == 0) std::this_thread::yield();
  pool.CompactOnce();
  EXPECT_EQ(pool.dead_count(), 0u);
  EXPECT_EQ(pool.live_size(), 0u);
  EXPECT_EQ(pool.stats().admitted, 200u);
}

TEST(OfferedLoadTest, FractionalCreditCarriesAcrossTicks) {
  chain::Ledger ledger;
  std::vector<chain::Transaction> txs;
  for (uint64_t i = 0; i < 10; ++i) txs.push_back(Tx(i + 1, i + 2));
  ASSERT_TRUE(ledger.Append(chain::Block(0, txs)).ok());

  OfferedLoadConfig config;
  config.txs_per_tick = 2.5;
  OfferedLoadGenerator generator(ledger, config);
  EXPECT_EQ(generator.total(), 10u);
  std::vector<OfferedTx> out;
  std::vector<size_t> per_tick;
  while (!generator.Done()) {
    out.clear();
    per_tick.push_back(generator.ReleaseTick(&out));
  }
  EXPECT_EQ(per_tick, (std::vector<size_t>{2, 3, 2, 3}));
  EXPECT_EQ(generator.released(), 10u);
}

TEST(OfferedLoadTest, FeesAreDeterministicAndWithinLevels) {
  chain::Ledger ledger;
  std::vector<chain::Transaction> txs;
  for (uint64_t i = 0; i < 64; ++i) txs.push_back(Tx(i + 1, i + 2));
  ASSERT_TRUE(ledger.Append(chain::Block(0, txs)).ok());

  OfferedLoadConfig config;
  config.txs_per_tick = 64.0;
  config.fee_levels = 4;
  OfferedLoadGenerator a(ledger, config);
  OfferedLoadGenerator b(ledger, config);
  std::vector<OfferedTx> out_a, out_b;
  a.ReleaseTick(&out_a);
  b.ReleaseTick(&out_b);
  ASSERT_EQ(out_a.size(), 64u);
  bool saw_distinct = false;
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].fee, out_b[i].fee);
    EXPECT_EQ(out_a[i].fee, a.FeeFor(i));
    EXPECT_GE(out_a[i].fee, 1u);
    EXPECT_LE(out_a[i].fee, 4u);
    if (out_a[i].fee != out_a[0].fee) saw_distinct = true;
  }
  EXPECT_TRUE(saw_distinct);
  // fee_levels = 1 pins every fee to 1 (the pure seq tie-break case).
  config.fee_levels = 1;
  OfferedLoadGenerator flat(ledger, config);
  std::vector<OfferedTx> out_flat;
  flat.ReleaseTick(&out_flat);
  for (const OfferedTx& tx : out_flat) EXPECT_EQ(tx.fee, 1u);
}

}  // namespace
}  // namespace txallo::mempool

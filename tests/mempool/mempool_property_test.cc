// Mempool property tests.
//
// 1. Serial-reference equivalence: for seeded random arrival schedules, the
//    concurrent pool's admitted/dispatched stream and every driver-side
//    counter match a ~40-line single-threaded reference model of the
//    admission spec (capacity bound, per-account pending limit, per-tick
//    rate limit, fee-desc/seq-asc dispatch).
//
// 2. Producer-count independence: the same schedule pushed through a
//    SubmitRouter with 1, 2, 4 and 7 producer threads yields byte-identical
//    dispatch streams and identical AdmissionStats — the determinism claim
//    the open-loop pipeline is built on, exercised at the component level
//    with real thread interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "txallo/chain/transaction.h"
#include "txallo/common/rng.h"
#include "txallo/mempool/mempool.h"
#include "txallo/mempool/submit_router.h"

namespace txallo::mempool {
namespace {

struct Arrival {
  chain::Transaction tx;
  chain::AccountId payer;
  uint64_t fee;
};

struct Schedule {
  std::vector<std::vector<Arrival>> ticks;
  size_t dispatch_cap;
};

Schedule MakeSchedule(uint64_t seed, size_t num_ticks, size_t max_per_tick,
                      uint64_t num_accounts, uint64_t fee_levels,
                      size_t dispatch_cap) {
  Rng rng(seed);
  Schedule schedule;
  schedule.dispatch_cap = dispatch_cap;
  schedule.ticks.resize(num_ticks);
  for (auto& tick : schedule.ticks) {
    const size_t n = rng.NextBounded(max_per_tick + 1);
    for (size_t i = 0; i < n; ++i) {
      const chain::AccountId from =
          static_cast<chain::AccountId>(1 + rng.NextBounded(num_accounts));
      const chain::AccountId to =
          static_cast<chain::AccountId>(1 + rng.NextBounded(num_accounts));
      tick.push_back(Arrival{chain::Transaction::Simple(from, to), from,
                             1 + rng.NextBounded(fee_levels)});
    }
  }
  return schedule;
}

// The dispatched stream, flattened: one (fee, seq) pair per transaction in
// dispatch order, tick-delimited by (0, UINT64_MAX) markers so batches
// can't alias across ticks.
using Stream = std::vector<std::pair<uint64_t, uint64_t>>;

// Reference model of the admission spec, kReject policy, no TTL.
Stream ReferenceRun(const Schedule& schedule, const MempoolConfig& config,
                    AdmissionStats* stats_out) {
  struct Live {
    uint64_t fee;
    uint64_t seq;
    chain::AccountId payer;
  };
  std::vector<Live> live;
  std::map<chain::AccountId, uint32_t> pending;
  AdmissionStats stats;
  Stream stream;
  uint64_t next_seq = 0;
  for (const auto& tick : schedule.ticks) {
    std::map<chain::AccountId, uint32_t> rate;
    for (const Arrival& arrival : tick) {
      const uint64_t seq = next_seq++;
      ++stats.submitted;
      if (config.capacity > 0 && live.size() >= config.capacity) {
        ++stats.dropped_capacity;
      } else if (config.account_pending_limit > 0 &&
                 pending[arrival.payer] >= config.account_pending_limit) {
        ++stats.dropped_account_pending;
      } else if (config.account_rate_limit > 0 &&
                 rate[arrival.payer] >= config.account_rate_limit) {
        ++stats.dropped_account_rate;
      } else {
        ++stats.admitted;
        ++pending[arrival.payer];
        ++rate[arrival.payer];
        live.push_back(Live{arrival.fee, seq, arrival.payer});
      }
    }
    stats.peak_depth = std::max<uint64_t>(stats.peak_depth, live.size());
    std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) {
      if (a.fee != b.fee) return a.fee > b.fee;
      return a.seq < b.seq;
    });
    const size_t take = std::min(schedule.dispatch_cap, live.size());
    for (size_t i = 0; i < take; ++i) {
      stream.emplace_back(live[i].fee, live[i].seq);
      --pending[live[i].payer];
    }
    live.erase(live.begin(), live.begin() + static_cast<long>(take));
    stream.emplace_back(0, UINT64_MAX);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return stream;
}

// Runs the schedule through a real Mempool. `producers` = 0 submits
// directly from the driver thread; >= 1 pushes each tick through a
// SubmitRouter with that many producer threads.
Stream PoolRun(const Schedule& schedule, const MempoolConfig& config,
               uint32_t producers, AdmissionStats* stats_out) {
  Mempool pool(config);
  std::optional<SubmitRouter> router;
  if (producers >= 1) router.emplace(&pool, producers);
  Stream stream;
  uint64_t tick_number = 0;
  for (const auto& tick : schedule.ticks) {
    const uint64_t seq_base = pool.ReserveSequenceRange(tick.size());
    if (router.has_value()) {
      std::vector<chain::Transaction> txs;
      std::vector<uint64_t> fees;
      for (const Arrival& arrival : tick) {
        txs.push_back(arrival.tx);
        fees.push_back(arrival.fee);
      }
      EXPECT_EQ(router->SubmitBatch(txs.data(), fees.data(), txs.size(),
                                    tick_number, seq_base),
                txs.size());
    } else {
      for (size_t i = 0; i < tick.size(); ++i) {
        EXPECT_TRUE(pool.Submit(tick[i].tx, tick[i].fee, tick_number,
                                seq_base + i)
                        .ok());
      }
    }
    pool.SealTick(tick_number);
    for (const PendingTx& tx : pool.TakeBatch(schedule.dispatch_cap)) {
      stream.emplace_back(tx.fee, tx.pool_seq);
    }
    stream.emplace_back(0, UINT64_MAX);
    ++tick_number;
  }
  if (stats_out != nullptr) *stats_out = pool.stats();
  return stream;
}

TEST(MempoolPropertyTest, MatchesSerialReferenceAcrossRandomSchedules) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    MempoolConfig config;
    // Vary the pressure: tight capacity on even seeds, account limits on
    // seeds divisible by 3, always a finite dispatch cap.
    config.capacity = (seed % 2 == 0) ? 48 : 1 << 12;
    config.account_pending_limit = (seed % 3 == 0) ? 3 : 0;
    config.account_rate_limit = (seed % 4 == 0) ? 2 : 0;
    config.staging_capacity = 256;
    const Schedule schedule =
        MakeSchedule(seed, /*num_ticks=*/40, /*max_per_tick=*/30,
                     /*num_accounts=*/12, /*fee_levels=*/5,
                     /*dispatch_cap=*/17);

    AdmissionStats expected_stats, actual_stats;
    const Stream expected = ReferenceRun(schedule, config, &expected_stats);
    const Stream actual = PoolRun(schedule, config, /*producers=*/0,
                                  &actual_stats);
    ASSERT_EQ(actual, expected) << "seed " << seed;
    EXPECT_EQ(actual_stats, expected_stats) << "seed " << seed;
  }
}

TEST(MempoolPropertyTest, DispatchStreamIndependentOfProducerCount) {
  MempoolConfig config;
  config.capacity = 96;
  config.account_pending_limit = 4;
  config.staging_capacity = 256;  // >= max batch: no timing-dependent drops
  const Schedule schedule =
      MakeSchedule(99, /*num_ticks=*/60, /*max_per_tick=*/40,
                   /*num_accounts=*/20, /*fee_levels=*/7,
                   /*dispatch_cap=*/23);

  AdmissionStats base_stats;
  const Stream base = PoolRun(schedule, config, /*producers=*/1, &base_stats);
  EXPECT_GT(base_stats.dropped_capacity + base_stats.dropped_account_pending,
            0u)
      << "schedule too gentle to exercise admission control";
  for (uint32_t producers : {2u, 4u, 7u}) {
    AdmissionStats stats;
    const Stream stream = PoolRun(schedule, config, producers, &stats);
    ASSERT_EQ(stream, base) << producers << " producers";
    EXPECT_EQ(stats, base_stats) << producers << " producers";
  }
  // And the threaded runs match the driver-thread-only submission path.
  AdmissionStats direct_stats;
  const Stream direct = PoolRun(schedule, config, /*producers=*/0,
                                &direct_stats);
  EXPECT_EQ(direct, base);
  EXPECT_EQ(direct_stats, base_stats);
}

TEST(MempoolPropertyTest, BlockPolicyStreamIndependentOfProducerCount) {
  MempoolConfig config;
  config.capacity = 32;
  config.policy = AdmissionPolicy::kBlock;
  config.staging_capacity = 256;
  const Schedule schedule =
      MakeSchedule(7, /*num_ticks=*/50, /*max_per_tick=*/24,
                   /*num_accounts=*/10, /*fee_levels=*/4,
                   /*dispatch_cap=*/9);

  AdmissionStats base_stats;
  const Stream base = PoolRun(schedule, config, /*producers=*/1, &base_stats);
  EXPECT_GT(base_stats.deferred, 0u)
      << "schedule too gentle to exercise deferral";
  for (uint32_t producers : {3u, 6u}) {
    AdmissionStats stats;
    const Stream stream = PoolRun(schedule, config, producers, &stats);
    ASSERT_EQ(stream, base) << producers << " producers";
    EXPECT_EQ(stats, base_stats) << producers << " producers";
  }
}

}  // namespace
}  // namespace txallo::mempool

// Open-loop pipeline integration: the mempool front-end driving the
// parallel engine through engine::IngestMode::kOpenLoop. Pins the
// determinism contract end-to-end — byte-identical traces, step metrics,
// admission counters and latency histograms across engine thread counts
// and producer fan-outs — plus trace save/load/replay round-trips and the
// open-loop input validation.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "txallo/allocator/registry.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

chain::Ledger MakeLedger(uint64_t blocks = 16, uint64_t seed = 5) {
  workload::EthereumLikeConfig config;
  config.num_blocks = blocks;
  config.txs_per_block = 25;
  config.num_accounts = 400;
  config.num_communities = 8;
  config.seed = seed;
  workload::EthereumLikeGenerator generator(config);
  return generator.GenerateLedger(blocks);
}

engine::EngineConfig SmallEngineConfig(uint32_t num_threads = 0) {
  engine::EngineConfig config;
  config.num_shards = 4;
  config.num_threads = num_threads;
  config.work.capacity_per_block = 8.0;
  config.hash_route_unassigned = true;
  return config;
}

std::unique_ptr<allocator::Allocator> MakeAllocator(
    const chain::Ledger& ledger) {
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), 4, 2.0);
  auto made = allocator::MakeAllocatorFromSpec("metis", options);
  EXPECT_TRUE(made.ok());
  return std::move(*made);
}

engine::PipelineConfig OpenLoopPipeline(double offered_load,
                                        uint32_t producers = 0) {
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 8;
  pipeline.ingest_mode = engine::IngestMode::kOpenLoop;
  pipeline.ingest_producers = producers;
  pipeline.open_loop.offered_load = offered_load;
  return pipeline;
}

uint64_t TotalDrops(const mempool::AdmissionStats& stats) {
  return stats.dropped_capacity + stats.dropped_account_pending +
         stats.dropped_account_rate + stats.dropped_backpressure;
}

TEST(OpenLoopPipelineTest, CommitsEverythingAndMeasuresLatency) {
  const chain::Ledger ledger = MakeLedger();
  auto alloc = MakeAllocator(ledger);
  engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
  auto result = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                             &engine, OpenLoopPipeline(30.0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const uint64_t total = ledger.num_transactions();
  EXPECT_EQ(result->admission.submitted, total);
  EXPECT_EQ(result->admission.admitted, total);
  EXPECT_EQ(TotalDrops(result->admission), 0u);
  EXPECT_EQ(result->report.sim.committed, total);
  // Every committed transaction contributes exactly one latency sample.
  EXPECT_EQ(result->e2e_latency_ticks.count(), total);
  EXPECT_GE(result->e2e_latency_ticks.Percentile(99.0),
            result->e2e_latency_ticks.Percentile(50.0));
  EXPECT_GE(result->e2e_latency_ticks.max(),
            result->e2e_latency_ticks.Percentile(99.9));

  // Per-window deltas reconcile with the run totals.
  uint64_t offered = 0, admitted = 0, dropped = 0;
  bool saw_depth = false;
  for (const engine::StepMetrics& step : result->steps) {
    offered += step.offered;
    admitted += step.admitted;
    dropped += step.admission_dropped;
    if (step.mempool_peak_depth > 0) saw_depth = true;
    EXPECT_GE(step.latency_p99_ticks, step.latency_p50_ticks);
    EXPECT_GE(step.latency_p999_ticks, step.latency_p99_ticks);
  }
  EXPECT_EQ(offered, total);
  EXPECT_EQ(admitted, total);
  EXPECT_EQ(dropped, 0u);
  EXPECT_TRUE(saw_depth);
}

TEST(OpenLoopPipelineTest, TraceBitIdenticalAcrossThreadsAndProducers) {
  const chain::Ledger ledger = MakeLedger();
  engine::ReplayLog base;
  {
    auto alloc = MakeAllocator(ledger);
    engine::ParallelEngine engine(SmallEngineConfig(1), nullptr);
    engine::PipelineConfig pipeline = OpenLoopPipeline(30.0, /*producers=*/0);
    pipeline.record = &base;
    auto result = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                               &engine, pipeline);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  ASSERT_FALSE(base.commits.empty());
  EXPECT_EQ(base.meta.ingest_mode, 1u);
  EXPECT_EQ(base.meta.offered_load, 30.0);

  const std::vector<std::pair<uint32_t, uint32_t>> shapes = {{4, 4}, {2, 1}};
  for (const auto& [threads, producers] : shapes) {
    auto alloc = MakeAllocator(ledger);
    engine::ParallelEngine engine(SmallEngineConfig(threads), nullptr);
    engine::ReplayLog log;
    engine::PipelineConfig pipeline = OpenLoopPipeline(30.0, producers);
    pipeline.record = &log;
    auto result = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                               &engine, pipeline);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Covers commits, prepares, state roots, meta and the step metrics
    // (wall-clock allocation timings excluded — the only fields allowed
    // to differ between two live runs).
    EXPECT_EQ(engine::DescribeTraceDivergence(base, log), "")
        << threads << " threads, " << producers << " producers";
  }
}

TEST(OpenLoopPipelineTest, SaveLoadReplayRoundTripSelfVerifies) {
  const chain::Ledger ledger = MakeLedger();
  engine::ReplayLog log;
  {
    auto alloc = MakeAllocator(ledger);
    engine::ParallelEngine engine(SmallEngineConfig(2), nullptr);
    engine::PipelineConfig pipeline = OpenLoopPipeline(24.0, /*producers=*/2);
    pipeline.open_loop.dispatch_per_tick = 20;
    pipeline.open_loop.fee_levels = 4;
    pipeline.open_loop.mempool.capacity = 200;
    pipeline.open_loop.mempool.account_pending_limit = 6;
    pipeline.record = &log;
    auto result = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                               &engine, pipeline);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  const std::string path = ::testing::TempDir() + "open_loop_roundtrip.trace";
  ASSERT_TRUE(engine::SaveReplayLog(log, path).ok());
  auto loaded = engine::LoadReplayLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(engine::DescribeTraceDivergence(log, *loaded), "");
  EXPECT_EQ(loaded->meta.ingest_mode, 1u);
  EXPECT_EQ(loaded->meta.offered_load, 24.0);
  EXPECT_EQ(loaded->meta.dispatch_per_tick, 20u);
  EXPECT_EQ(loaded->meta.fee_levels, 4u);
  EXPECT_EQ(loaded->meta.mempool_capacity, 200u);
  EXPECT_EQ(loaded->meta.account_pending_limit, 6u);

  // Replay on a fresh engine with a different thread count: the pipeline
  // reconstructs the open-loop drive from the trace meta (the caller's
  // open_loop config is deliberately left default here) and verifies the
  // re-execution against the recorded trace internally.
  engine::ParallelEngine engine(SmallEngineConfig(4), nullptr);
  auto replayed = engine::ReplayRecordedStream(ledger, *loaded, &engine,
                                               engine::PipelineConfig{});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed->steps.size(), log.steps.size());
  for (size_t i = 0; i < log.steps.size(); ++i) {
    EXPECT_EQ(replayed->steps[i], log.steps[i]) << "step " << i;
  }
}

TEST(OpenLoopPipelineTest, AdmissionSheddingIsDeterministicUnderOverload) {
  const chain::Ledger ledger = MakeLedger();
  const auto run = [&](uint32_t threads, uint32_t producers) {
    auto alloc = MakeAllocator(ledger);
    engine::ParallelEngine engine(SmallEngineConfig(threads), nullptr);
    engine::PipelineConfig pipeline = OpenLoopPipeline(60.0, producers);
    pipeline.open_loop.dispatch_per_tick = 10;
    pipeline.open_loop.mempool.capacity = 40;
    pipeline.open_loop.mempool.account_rate_limit = 8;
    auto result = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                               &engine, pipeline);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  };
  const engine::PipelineResult base = run(1, 0);
  EXPECT_GT(TotalDrops(base.admission), 0u);
  EXPECT_EQ(base.admission.dropped_backpressure, 0u)
      << "all shedding must happen at the deterministic seal";
  EXPECT_LT(base.report.sim.committed, ledger.num_transactions());
  EXPECT_EQ(base.report.sim.committed, base.admission.admitted);
  EXPECT_EQ(base.e2e_latency_ticks.count(), base.report.sim.committed);

  const engine::PipelineResult other = run(4, 3);
  EXPECT_EQ(other.admission, base.admission);
  EXPECT_TRUE(other.e2e_latency_ticks == base.e2e_latency_ticks);
  EXPECT_EQ(other.report.sim.committed, base.report.sim.committed);
}

TEST(OpenLoopPipelineTest, RejectsNonPositiveOfferedLoad) {
  const chain::Ledger ledger = MakeLedger(4);
  auto alloc = MakeAllocator(ledger);
  engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
  auto result = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                             &engine, OpenLoopPipeline(0.0));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(OpenLoopPipelineTest, RejectsStaleEngine) {
  const chain::Ledger ledger = MakeLedger(4);
  engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
  {
    auto alloc = MakeAllocator(ledger);
    auto first = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                              &engine, OpenLoopPipeline(8.0));
    ASSERT_TRUE(first.ok()) << first.status().ToString();
  }
  // Commit observation must precede the first submission, so a second run
  // on the same engine is rejected up front rather than mis-measured.
  auto alloc = MakeAllocator(ledger);
  auto second = engine::RunReallocatedStream(ledger, alloc->AsOnline(),
                                             &engine, OpenLoopPipeline(8.0));
  EXPECT_FALSE(second.ok());
}

}  // namespace
}  // namespace txallo

#include "txallo/chain/account.h"

#include <gtest/gtest.h>

#include <set>

namespace txallo::chain {
namespace {

TEST(AccountRegistryTest, InternIsIdempotent) {
  AccountRegistry registry;
  AccountId a = registry.Intern("0xabc");
  AccountId b = registry.Intern("0xdef");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.Intern("0xabc"), a);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(AccountRegistryTest, AddressRoundTrip) {
  AccountRegistry registry;
  AccountId a = registry.Intern("0xabc");
  EXPECT_EQ(registry.AddressOf(a), "0xabc");
}

TEST(AccountRegistryTest, FindMissingIsNotFound) {
  AccountRegistry registry;
  auto result = registry.Find("0xmissing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(AccountRegistryTest, FindExisting) {
  AccountRegistry registry;
  AccountId a = registry.Intern("0xabc");
  auto result = registry.Find("0xabc");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), a);
}

TEST(AccountRegistryTest, TypesAreStored) {
  AccountRegistry registry;
  AccountId eoa = registry.Intern("0xclient", AccountType::kExternallyOwned);
  AccountId ca = registry.Intern("0xcontract", AccountType::kContract);
  EXPECT_EQ(registry.TypeOf(eoa), AccountType::kExternallyOwned);
  EXPECT_EQ(registry.TypeOf(ca), AccountType::kContract);
}

TEST(AccountRegistryTest, SyntheticAddressesAreUniqueAndDense) {
  AccountRegistry registry;
  for (int i = 0; i < 100; ++i) {
    AccountId id = registry.CreateSynthetic();
    EXPECT_EQ(id, static_cast<AccountId>(i));
  }
  std::set<std::string> addresses;
  for (int i = 0; i < 100; ++i) {
    addresses.insert(registry.AddressOf(static_cast<AccountId>(i)));
  }
  EXPECT_EQ(addresses.size(), 100u);
}

TEST(AccountRegistryTest, SyntheticAddressIsFindable) {
  AccountRegistry registry;
  AccountId id = registry.CreateSynthetic();
  auto found = registry.Find("acct-0");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), id);
}

TEST(AccountRegistryTest, HashOrderIsPermutationAndDeterministic) {
  AccountRegistry registry;
  for (int i = 0; i < 500; ++i) registry.CreateSynthetic();
  auto order1 = registry.IdsInHashOrder();
  auto order2 = registry.IdsInHashOrder();
  EXPECT_EQ(order1, order2);
  std::set<AccountId> unique(order1.begin(), order1.end());
  EXPECT_EQ(unique.size(), 500u);
  // Order keys must actually be sorted.
  for (size_t i = 1; i < order1.size(); ++i) {
    EXPECT_LE(registry.OrderKey(order1[i - 1]), registry.OrderKey(order1[i]));
  }
}

TEST(AccountRegistryTest, HashOrderDiffersFromIdOrder) {
  // With 500 accounts the probability the SHA-based order equals id order
  // is effectively zero; if it does, OrderKey is broken.
  AccountRegistry registry;
  for (int i = 0; i < 500; ++i) registry.CreateSynthetic();
  auto order = registry.IdsInHashOrder();
  bool differs = false;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != static_cast<AccountId>(i)) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace txallo::chain

#include "txallo/chain/ledger.h"

#include <gtest/gtest.h>

namespace txallo::chain {
namespace {

Block MakeBlock(uint64_t number, int num_txs) {
  std::vector<Transaction> txs;
  for (int i = 0; i < num_txs; ++i) {
    txs.push_back(Transaction::Simple(static_cast<AccountId>(i),
                                      static_cast<AccountId>(i + 1)));
  }
  return Block(number, std::move(txs));
}

TEST(LedgerTest, AppendAccumulatesTransactions) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeBlock(0, 3)).ok());
  ASSERT_TRUE(ledger.Append(MakeBlock(1, 5)).ok());
  EXPECT_EQ(ledger.num_blocks(), 2u);
  EXPECT_EQ(ledger.num_transactions(), 8u);
}

TEST(LedgerTest, RejectsNonIncreasingBlockNumbers) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeBlock(5, 1)).ok());
  EXPECT_FALSE(ledger.Append(MakeBlock(5, 1)).ok());
  EXPECT_FALSE(ledger.Append(MakeBlock(3, 1)).ok());
  EXPECT_TRUE(ledger.Append(MakeBlock(6, 1)).ok());
}

TEST(LedgerTest, ForEachTransactionVisitsInOrder) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeBlock(0, 2)).ok());
  ASSERT_TRUE(ledger.Append(MakeBlock(1, 3)).ok());
  int count = 0;
  ledger.ForEachTransaction([&](const Transaction&) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(LedgerTest, RangeIterationRespectsBounds) {
  Ledger ledger;
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_TRUE(ledger.Append(MakeBlock(b, 2)).ok());
  }
  int count = 0;
  ledger.ForEachTransactionInRange(1, 3, [&](const Transaction&) { ++count; });
  EXPECT_EQ(count, 4);  // Blocks 1 and 2.
}

TEST(LedgerTest, RangeClampsPastEnd) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeBlock(0, 2)).ok());
  int count = 0;
  ledger.ForEachTransactionInRange(0, 99, [&](const Transaction&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(LedgerTest, AllTransactionsFlattens) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeBlock(0, 2)).ok());
  ASSERT_TRUE(ledger.Append(MakeBlock(1, 1)).ok());
  auto txs = ledger.AllTransactions();
  EXPECT_EQ(txs.size(), 3u);
}

TEST(LedgerTest, EmptyLedger) {
  Ledger ledger;
  EXPECT_EQ(ledger.num_blocks(), 0u);
  EXPECT_EQ(ledger.num_transactions(), 0u);
  int count = 0;
  ledger.ForEachTransaction([&](const Transaction&) { ++count; });
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace txallo::chain

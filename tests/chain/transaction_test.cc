#include "txallo/chain/transaction.h"

#include <gtest/gtest.h>

namespace txallo::chain {
namespace {

TEST(TransactionTest, SimpleTwoParty) {
  Transaction tx = Transaction::Simple(3, 7);
  EXPECT_EQ(tx.inputs(), std::vector<AccountId>({3}));
  EXPECT_EQ(tx.outputs(), std::vector<AccountId>({7}));
  EXPECT_EQ(tx.accounts(), std::vector<AccountId>({3, 7}));
  EXPECT_EQ(tx.NumDistinctAccounts(), 2u);
  EXPECT_FALSE(tx.IsSelfLoop());
}

TEST(TransactionTest, AccountsAreSortedAndDeduped) {
  Transaction tx({9, 2}, {2, 5, 9});
  EXPECT_EQ(tx.accounts(), std::vector<AccountId>({2, 5, 9}));
  EXPECT_EQ(tx.NumDistinctAccounts(), 3u);
}

TEST(TransactionTest, SelfTransferIsSelfLoop) {
  Transaction tx({4}, {4});
  EXPECT_TRUE(tx.IsSelfLoop());
  EXPECT_EQ(tx.NumDistinctAccounts(), 1u);
}

TEST(TransactionTest, MultiInputMultiOutput) {
  Transaction tx({1, 2, 3}, {4, 5});
  EXPECT_EQ(tx.NumDistinctAccounts(), 5u);
  EXPECT_EQ(tx.inputs().size(), 3u);
  EXPECT_EQ(tx.outputs().size(), 2u);
}

TEST(TransactionTest, OverlappingInputOutputCountedOnce) {
  // The sender also receives change: A_Tx = A_in ∪ A_out.
  Transaction tx({1}, {1, 2});
  EXPECT_EQ(tx.accounts(), std::vector<AccountId>({1, 2}));
  EXPECT_FALSE(tx.IsSelfLoop());
}

}  // namespace
}  // namespace txallo::chain

#include "txallo/baselines/broker.h"

#include <gtest/gtest.h>

#include "txallo/graph/builder.h"

namespace txallo::baselines {
namespace {

using chain::Transaction;

alloc::AllocationParams Params(uint32_t k, double eta, double capacity) {
  alloc::AllocationParams p;
  p.num_shards = k;
  p.eta = eta;
  p.capacity = capacity;
  p.epsilon = 0.0;
  return p;
}

alloc::Allocation TwoShards() {
  alloc::Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  return a;
}

TEST(BrokerSelectTest, PicksMostActiveAccounts) {
  graph::TransactionGraph g;
  for (graph::NodeId v = 1; v <= 5; ++v) g.AddEdge(0, v, 10.0);  // Hub 0.
  g.AddEdge(1, 2, 5.0);
  g.Consolidate();
  auto brokers = SelectBrokersByActivity(g, 2);
  ASSERT_EQ(brokers.size(), 2u);
  EXPECT_EQ(brokers[0], 0u);  // Hub: strength 50.
  EXPECT_EQ(brokers[1], 1u);  // Strength 15.
}

TEST(BrokerSelectTest, RequestMoreThanNodesClamps) {
  graph::TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.Consolidate();
  auto brokers = SelectBrokersByActivity(g, 10);
  EXPECT_EQ(brokers.size(), 2u);
}

TEST(BrokerEvalTest, BrokerCounterpartyMakesTransactionIntra) {
  // Account 2 (shard 1) is a broker; tx 0 -> 2 stays intra in shard 0.
  alloc::Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction::Simple(0, 2)};
  auto report = EvaluateWithBrokers(txs, a, Params(2, 2.0, 100.0), {2});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->cross_shard_ratio, 0.0);
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 1.0);
  EXPECT_DOUBLE_EQ(report->shard_workloads[1], 0.0);
}

TEST(BrokerEvalTest, NonBrokerCrossIsBrokeredAtIntraPrice) {
  alloc::Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction::Simple(0, 2)};
  BrokerOptions options;
  options.broker_cross_cost = 1.2;
  options.broker_latency_blocks = 1.0;
  auto report =
      EvaluateWithBrokers(txs, a, Params(2, 5.0, 100.0), {}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->cross_shard_ratio, 1.0);
  // Workload 1.2 per involved shard — NOT η=5.
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 1.2);
  EXPECT_DOUBLE_EQ(report->shard_workloads[1], 1.2);
  // Latency: queueing 1 block + broker hop 1 block amortized over 1 tx.
  EXPECT_DOUBLE_EQ(report->avg_latency_blocks, 2.0);
}

TEST(BrokerEvalTest, AllBrokerTransactionCostsOneUnit) {
  alloc::Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction::Simple(1, 2)};
  auto report = EvaluateWithBrokers(txs, a, Params(2, 2.0, 100.0), {1, 2});
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->cross_shard_ratio, 0.0);
  EXPECT_DOUBLE_EQ(report->shard_workloads[0] + report->shard_workloads[1],
                   1.0);
}

TEST(BrokerEvalTest, ThroughputCreditSplitsAcrossBrokeredShards) {
  alloc::Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction::Simple(0, 2),
                               Transaction::Simple(1, 3)};
  auto report = EvaluateWithBrokers(txs, a, Params(2, 2.0, 100.0), {});
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->throughput, 2.0);  // Each counted once in total.
}

TEST(BrokerEvalTest, BrokersReduceWorkloadVsPlainEvaluation) {
  // Hub-heavy traffic: making the hub a broker removes its cross-shard η
  // penalty entirely.
  alloc::Allocation a = TwoShards();
  std::vector<Transaction> txs;
  for (int i = 0; i < 10; ++i) {
    txs.push_back(Transaction::Simple(0, 2));  // Cross without brokers.
  }
  alloc::AllocationParams params = Params(2, 4.0, 100.0);
  auto plain = alloc::EvaluateAllocation(txs, a, params);
  auto with_broker = EvaluateWithBrokers(txs, a, params, {2});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_broker.ok());
  double plain_total = 0.0, broker_total = 0.0;
  for (double s : plain->shard_workloads) plain_total += s;
  for (double s : with_broker->shard_workloads) broker_total += s;
  EXPECT_LT(broker_total, plain_total / 2.0);
}

TEST(BrokerEvalTest, UnassignedNonBrokerFails) {
  alloc::Allocation partial(3, 2);
  partial.Assign(0, 0);
  std::vector<Transaction> txs{Transaction::Simple(0, 2)};
  auto report = EvaluateWithBrokers(txs, partial, Params(2, 2.0, 10.0), {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace txallo::baselines

#include "txallo/baselines/shard_scheduler.h"

#include <gtest/gtest.h>

#include "txallo/alloc/metrics.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::baselines {
namespace {

using chain::Transaction;

TEST(ShardSchedulerTest, GroupsSingleTransactionAccounts) {
  // Both accounts of a first-seen pair should land in one shard: the whole
  // point of transaction-level placement.
  ShardScheduler scheduler(4, 2.0);
  scheduler.Process(Transaction::Simple(0, 1));
  auto a = scheduler.SnapshotAllocation(2);
  EXPECT_EQ(a.shard_of(0), a.shard_of(1));
}

TEST(ShardSchedulerTest, LoadAccountingIntraVsCross) {
  ShardScheduler scheduler(2, 3.0);
  scheduler.Process(Transaction::Simple(0, 1));  // Intra after placement.
  double total = 0.0;
  for (double l : scheduler.shard_loads()) total += l;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(ShardSchedulerTest, BalancesLoadAcrossShards) {
  // Independent account pairs must spread across shards near-evenly —
  // Fig. 4c's flat workload profile.
  ShardScheduler scheduler(4, 2.0);
  for (chain::AccountId a = 0; a < 4000; a += 2) {
    scheduler.Process(Transaction::Simple(a, a + 1));
  }
  const auto& loads = scheduler.shard_loads();
  double lo = loads[0], hi = loads[0];
  for (double l : loads) {
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  EXPECT_LT(hi - lo, 0.05 * hi + 5.0);
}

TEST(ShardSchedulerTest, MigrationFollowsRepeatedInteraction) {
  ShardScheduler scheduler(2, 2.0);
  // Establish account 0 and 1 in (likely) different shards via unrelated
  // placements, then hammer 0-1 interactions: one should migrate.
  scheduler.Process(Transaction::Simple(0, 2));
  scheduler.Process(Transaction::Simple(1, 3));
  auto before = scheduler.SnapshotAllocation(4);
  if (before.shard_of(0) == before.shard_of(1)) {
    GTEST_SKIP() << "placement already co-located the pair";
  }
  for (int i = 0; i < 50; ++i) {
    scheduler.Process(Transaction::Simple(0, 1));
  }
  auto after = scheduler.SnapshotAllocation(4);
  EXPECT_EQ(after.shard_of(0), after.shard_of(1));
  EXPECT_GT(scheduler.migrations(), 0u);
}

TEST(ShardSchedulerTest, SnapshotCoversUnseenAccounts) {
  ShardScheduler scheduler(3, 2.0);
  scheduler.Process(Transaction::Simple(0, 1));
  auto a = scheduler.SnapshotAllocation(10);
  EXPECT_TRUE(a.Validate().ok());
  EXPECT_EQ(a.num_accounts(), 10u);
}

TEST(ShardSchedulerTest, ProcessLedgerFillsInfo) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 20;
  config.txs_per_block = 50;
  config.num_accounts = 500;
  config.num_communities = 10;
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(config.num_blocks);
  ShardScheduler scheduler(4, 2.0);
  ShardSchedulerInfo info;
  scheduler.ProcessLedger(ledger, &info);
  EXPECT_EQ(info.transactions_processed, ledger.num_transactions());
  EXPECT_GT(info.placements, 0u);
  EXPECT_GE(info.total_seconds, 0.0);
}

TEST(ShardSchedulerTest, BetterBalanceThanGraphObliviousHub) {
  // On a hub-heavy workload Shard Scheduler's balance (ρ) must beat a
  // mapping that dumps the hub's whole neighborhood into one shard.
  workload::EthereumLikeConfig config;
  config.num_blocks = 40;
  config.txs_per_block = 100;
  config.num_accounts = 1000;
  config.num_communities = 8;
  config.hub_share = 0.3;  // Aggressive hub for a clear signal.
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = gen.GenerateLedger(config.num_blocks);

  ShardScheduler scheduler(4, 2.0);
  scheduler.ProcessLedger(ledger);
  auto scheduler_alloc = scheduler.SnapshotAllocation(gen.registry().size());
  auto params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), 4, 2.0);
  auto scheduler_report =
      alloc::EvaluateAllocation(ledger, scheduler_alloc, params);
  ASSERT_TRUE(scheduler_report.ok());

  // Degenerate comparison: everything in shard 0.
  alloc::Allocation lumped(gen.registry().size(), 4);
  for (size_t a = 0; a < lumped.num_accounts(); ++a) {
    lumped.Assign(static_cast<chain::AccountId>(a), 0);
  }
  auto lumped_report = alloc::EvaluateAllocation(ledger, lumped, params);
  ASSERT_TRUE(lumped_report.ok());
  EXPECT_LT(scheduler_report->workload_stddev,
            lumped_report->workload_stddev);
}

TEST(ShardSchedulerTest, DeterministicOverSameStream) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 10;
  config.txs_per_block = 40;
  config.num_accounts = 300;
  config.num_communities = 6;
  workload::EthereumLikeGenerator gen_a(config);
  workload::EthereumLikeGenerator gen_b(config);
  chain::Ledger ledger_a = gen_a.GenerateLedger(config.num_blocks);
  chain::Ledger ledger_b = gen_b.GenerateLedger(config.num_blocks);
  ShardScheduler sched_a(4, 2.0), sched_b(4, 2.0);
  sched_a.ProcessLedger(ledger_a);
  sched_b.ProcessLedger(ledger_b);
  EXPECT_TRUE(sched_a.SnapshotAllocation(300) ==
              sched_b.SnapshotAllocation(300));
}

}  // namespace
}  // namespace txallo::baselines

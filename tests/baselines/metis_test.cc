#include "txallo/baselines/metis/partitioner.h"

#include <gtest/gtest.h>

#include <tuple>

#include "txallo/baselines/metis/coarsen.h"
#include "txallo/baselines/metis/initial.h"
#include "txallo/baselines/metis/refine.h"
#include "txallo/common/rng.h"
#include "txallo/graph/builder.h"

namespace txallo::baselines::metis {
namespace {

using graph::NodeId;
using graph::TransactionGraph;

TransactionGraph CommunityGraph(int communities, int per_community,
                                uint64_t seed) {
  TransactionGraph g;
  Rng rng(seed);
  const int n = communities * per_community;
  for (int c = 0; c < communities; ++c) {
    for (int i = 0; i < per_community * 4; ++i) {
      NodeId u = static_cast<NodeId>(c * per_community +
                                     rng.NextBounded(per_community));
      NodeId v = static_cast<NodeId>(c * per_community +
                                     rng.NextBounded(per_community));
      if (u != v) g.AddEdge(u, v, 1.0);
    }
  }
  for (int i = 0; i < communities * 2; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u != v) g.AddEdge(u, v, 0.1);
  }
  g.EnsureNodeCount(n);
  g.Consolidate();
  return g;
}

TEST(WorkGraphTest, UnitWeightingCountsAccounts) {
  // Default weighting mirrors the prior works: one unit per account.
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.AddSelfLoop(0, 3.0);
  g.Consolidate();
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  EXPECT_DOUBLE_EQ(wg.vertex_weights[0], 1.0);
  EXPECT_DOUBLE_EQ(wg.vertex_weights[1], 1.0);
  EXPECT_DOUBLE_EQ(wg.total_vertex_weight, 2.0);
}

TEST(WorkGraphTest, IncidentWeightingUsesStrengthPlusSelfLoop) {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.AddSelfLoop(0, 3.0);
  g.Consolidate();
  WorkGraph wg = WorkGraph::FromTransactionGraph(
      g, VertexWeighting::kIncidentWeight);
  EXPECT_DOUBLE_EQ(wg.vertex_weights[0], 5.0);
  EXPECT_DOUBLE_EQ(wg.vertex_weights[1], 2.0);
  EXPECT_DOUBLE_EQ(wg.total_vertex_weight, 7.0);
}

TEST(CoarsenTest, HalvesNodeCountOnMatchableGraph) {
  TransactionGraph g;
  for (NodeId v = 0; v < 16; v += 2) g.AddEdge(v, v + 1, 1.0);
  g.Consolidate();
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  CoarsenStep step = CoarsenOnce(wg);
  EXPECT_EQ(step.coarse.num_nodes(), 8u);
}

TEST(CoarsenTest, PreservesTotalVertexWeight) {
  TransactionGraph g = CommunityGraph(4, 16, 3);
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  CoarsenStep step = CoarsenOnce(wg);
  double total = 0.0;
  for (double w : step.coarse.vertex_weights) total += w;
  EXPECT_NEAR(total, wg.total_vertex_weight, 1e-9);
}

TEST(CoarsenTest, ProjectionIsOntoCoarseIds) {
  TransactionGraph g = CommunityGraph(3, 10, 5);
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  CoarsenStep step = CoarsenOnce(wg);
  for (uint32_t c : step.projection) {
    EXPECT_LT(c, step.coarse.num_nodes());
  }
}

TEST(CoarsenTest, CutIsPreservedUnderProjection) {
  // Edge cut of a coarse partition equals the cut of its projection: the
  // invariant multilevel partitioning rests on.
  TransactionGraph g = CommunityGraph(4, 12, 7);
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  CoarsenStep step = CoarsenOnce(wg);
  std::vector<uint32_t> coarse_part(step.coarse.num_nodes());
  for (size_t i = 0; i < coarse_part.size(); ++i) {
    coarse_part[i] = static_cast<uint32_t>(i % 3);
  }
  std::vector<uint32_t> fine_part(wg.num_nodes());
  for (size_t v = 0; v < fine_part.size(); ++v) {
    fine_part[v] = coarse_part[step.projection[v]];
  }
  EXPECT_NEAR(EdgeCut(step.coarse, coarse_part), EdgeCut(wg, fine_part),
              1e-9);
}

TEST(GreedyGrowTest, ProducesCompletePartition) {
  TransactionGraph g = CommunityGraph(4, 20, 11);
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  auto part = GreedyGrowPartition(wg, 4);
  for (uint32_t p : part) EXPECT_LT(p, 4u);
}

TEST(GreedyGrowTest, SinglePartTrivial) {
  TransactionGraph g = CommunityGraph(2, 10, 13);
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  auto part = GreedyGrowPartition(wg, 1);
  for (uint32_t p : part) EXPECT_EQ(p, 0u);
}

TEST(RefineTest, NeverIncreasesCut) {
  TransactionGraph g = CommunityGraph(4, 20, 17);
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  auto part = GreedyGrowPartition(wg, 4);
  const double before = EdgeCut(wg, part);
  RefineOptions options;
  const double after = RefinePartition(wg, 4, options, &part);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_NEAR(after, EdgeCut(wg, part), 1e-9);
}

TEST(RefineTest, RespectsBalanceConstraint) {
  TransactionGraph g = CommunityGraph(4, 20, 19);
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  auto part = GreedyGrowPartition(wg, 4);
  RefineOptions options;
  options.imbalance = 1.1;
  RefinePartition(wg, 4, options, &part);
  auto weights = PartWeights(wg, part, 4);
  const double cap = options.imbalance * wg.total_vertex_weight / 4.0;
  // Refinement may not push any part beyond the cap it enforces (the
  // initial partition could already exceed it; this graph's doesn't).
  for (double w : weights) EXPECT_LE(w, cap * 1.5);
}

TEST(PartitionerTest, EndToEndValidAllocation) {
  TransactionGraph g = CommunityGraph(6, 25, 23);
  PartitionInfo info;
  auto result = PartitionGraph(g, 6, {}, &info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Validate().ok());
  EXPECT_GE(info.levels, 1);
  EXPECT_GE(info.edge_cut, 0.0);
}

TEST(PartitionerTest, BeatsRandomCutOnCommunityGraph) {
  TransactionGraph g = CommunityGraph(6, 25, 29);
  auto result = PartitionGraph(g, 6);
  ASSERT_TRUE(result.ok());
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  std::vector<uint32_t> metis_part(g.num_nodes());
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    metis_part[v] = result->shard_of(static_cast<chain::AccountId>(v));
  }
  std::vector<uint32_t> random_part(g.num_nodes());
  Rng rng(31);
  for (auto& p : random_part) p = static_cast<uint32_t>(rng.NextBounded(6));
  EXPECT_LT(EdgeCut(wg, metis_part), 0.5 * EdgeCut(wg, random_part));
}

TEST(PartitionerTest, RejectsZeroShards) {
  TransactionGraph g = CommunityGraph(2, 10, 37);
  auto result = PartitionGraph(g, 0);
  ASSERT_FALSE(result.ok());
}

TEST(PartitionerTest, Deterministic) {
  TransactionGraph g = CommunityGraph(4, 20, 41);
  auto a = PartitionGraph(g, 4);
  auto b = PartitionGraph(g, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value() == b.value());
}

// Balance property across a (k, seed) sweep: vertex-weight balance within
// tolerance on well-conditioned community graphs.
class MetisBalanceSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(MetisBalanceSweep, PartWeightsWithinTolerance) {
  auto [k, seed] = GetParam();
  TransactionGraph g = CommunityGraph(8, 30, seed);
  auto result = PartitionGraph(g, static_cast<uint32_t>(k));
  ASSERT_TRUE(result.ok());
  WorkGraph wg = WorkGraph::FromTransactionGraph(g);
  std::vector<uint32_t> part(g.num_nodes());
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    part[v] = result->shard_of(static_cast<chain::AccountId>(v));
  }
  auto weights = PartWeights(wg, part, static_cast<uint32_t>(k));
  const double avg = wg.total_vertex_weight / k;
  for (double w : weights) {
    EXPECT_LT(w, avg * 1.8) << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MetisBalanceSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(101u, 202u, 303u)));

}  // namespace
}  // namespace txallo::baselines::metis

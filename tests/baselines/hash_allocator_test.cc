#include "txallo/baselines/hash_allocator.h"

#include <gtest/gtest.h>

namespace txallo::baselines {
namespace {

TEST(HashAllocatorTest, AssignsEveryAccountInRange) {
  alloc::Allocation a = AllocateByHash(size_t{1000}, 8);
  EXPECT_TRUE(a.Validate().ok());
  EXPECT_EQ(a.num_accounts(), 1000u);
  for (chain::AccountId id = 0; id < 1000; ++id) {
    EXPECT_LT(a.shard_of(id), 8u);
  }
}

TEST(HashAllocatorTest, DeterministicAcrossCalls) {
  alloc::Allocation a = AllocateByHash(size_t{500}, 16);
  alloc::Allocation b = AllocateByHash(size_t{500}, 16);
  EXPECT_TRUE(a == b);
}

TEST(HashAllocatorTest, RegistryVariantMatchesAddressHash) {
  chain::AccountRegistry registry;
  for (int i = 0; i < 200; ++i) registry.CreateSynthetic();
  alloc::Allocation a = AllocateByHash(registry, 4);
  EXPECT_TRUE(a.Validate().ok());
  for (chain::AccountId id = 0; id < 200; ++id) {
    EXPECT_EQ(a.shard_of(id), registry.OrderKey(id) % 4);
  }
}

TEST(HashAllocatorTest, SpreadIsNearUniform) {
  alloc::Allocation a = AllocateByHash(size_t{32'000}, 16);
  auto sizes = a.ShardSizes();
  for (uint64_t s : sizes) {
    EXPECT_GT(s, 32'000 / 16 * 0.8);
    EXPECT_LT(s, 32'000 / 16 * 1.2);
  }
}

TEST(HashAllocatorTest, SingleShardDegenerate) {
  alloc::Allocation a = AllocateByHash(size_t{10}, 1);
  for (chain::AccountId id = 0; id < 10; ++id) {
    EXPECT_EQ(a.shard_of(id), 0u);
  }
}

}  // namespace
}  // namespace txallo::baselines

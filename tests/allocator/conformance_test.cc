// Parameterized conformance suite: every strategy in RegisteredNames() must
// (a) produce a valid, complete mapping over the fixture's account domain
// with every shard id < k, (b) be deterministic — two independent
// instances and two calls on one instance all yield the identical mapping
// (paper §V-B: all miners must agree without a consensus round), and
// (c) honor the same contract on the online Rebalance path. A strategy
// added to the registry is conformance-tested with zero new test code.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "txallo/allocator/registry.h"
#include "txallo/graph/builder.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::allocator {
namespace {

constexpr uint32_t kShards = 4;
constexpr double kEta = 2.0;

struct Workload {
  std::unique_ptr<workload::EthereumLikeGenerator> generator;
  chain::Ledger ledger;
  graph::TransactionGraph graph;
  std::vector<graph::NodeId> node_order;
};

const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    workload::EthereumLikeConfig config;
    config.num_accounts = 600;
    config.txs_per_block = 40;
    config.num_blocks = 25;
    config.num_communities = 12;
    config.seed = 7;
    w->generator = std::make_unique<workload::EthereumLikeGenerator>(config);
    w->ledger = w->generator->GenerateLedger(config.num_blocks);
    w->graph = graph::BuildTransactionGraph(w->ledger);
    w->graph.EnsureNodeCount(w->generator->registry().size());
    w->graph.Consolidate();
    w->node_order = w->generator->registry().IdsInHashOrder();
    return w;
  }();
  return *workload;
}

AllocatorOptions OptionsForWorkload(const Workload& w) {
  AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      w.ledger.num_transactions(), kShards, kEta);
  options.registry = &w.generator->registry();
  options.seed = 7;
  return options;
}

AllocationContext ContextForWorkload(const Workload& w,
                                     const AllocatorOptions& options) {
  AllocationContext context;
  context.graph = &w.graph;
  context.ledger = &w.ledger;
  context.registry = &w.generator->registry();
  context.node_order = &w.node_order;
  context.params = options.params;
  context.seed = options.seed;
  return context;
}

class AllocatorConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(AllocatorConformance, OneShotCoversDomainWithValidShards) {
  const Workload& w = SharedWorkload();
  const AllocatorOptions options = OptionsForWorkload(w);
  auto made = MakeAllocator(GetParam(), options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto allocation = (*made)->Allocate(ContextForWorkload(w, options));
  ASSERT_TRUE(allocation.ok()) << allocation.status().ToString();
  EXPECT_EQ(allocation->num_shards(), kShards);
  EXPECT_GE(allocation->num_accounts(), w.generator->registry().size());
  // Completeness + range (Definition 1) over the whole domain...
  EXPECT_TRUE(allocation->Validate().ok())
      << allocation->Validate().ToString();
  // ...and the raw ids once more, so a Validate() regression cannot mask a
  // strategy handing out shard ids >= k.
  for (alloc::ShardId shard : allocation->raw()) {
    ASSERT_LT(shard, kShards);
  }
}

TEST_P(AllocatorConformance, OneShotIsDeterministic) {
  const Workload& w = SharedWorkload();
  const AllocatorOptions options = OptionsForWorkload(w);
  const AllocationContext context = ContextForWorkload(w, options);
  auto first = MakeAllocator(GetParam(), options);
  auto second = MakeAllocator(GetParam(), options);
  ASSERT_TRUE(first.ok() && second.ok());
  auto a1 = (*first)->Allocate(context);
  auto a2 = (*second)->Allocate(context);
  auto a1_again = (*first)->Allocate(context);
  ASSERT_TRUE(a1.ok() && a2.ok() && a1_again.ok());
  EXPECT_TRUE(*a1 == *a2) << "two instances disagreed";
  EXPECT_TRUE(*a1 == *a1_again) << "repeat call on one instance disagreed";
}

TEST_P(AllocatorConformance, OnlineRebalanceMatchesContract) {
  const Workload& w = SharedWorkload();
  const AllocatorOptions options = OptionsForWorkload(w);
  auto first = MakeAllocator(GetParam(), options);
  auto second = MakeAllocator(GetParam(), options);
  ASSERT_TRUE(first.ok() && second.ok());
  OnlineAllocator* online1 = (*first)->AsOnline();
  OnlineAllocator* online2 = (*second)->AsOnline();
  if (online1 == nullptr) {
    GTEST_SKIP() << GetParam() << " is one-shot only";
  }
  ASSERT_NE(online2, nullptr);
  for (const chain::Block& block : w.ledger.blocks()) {
    online1->ApplyBlock(block);
    online2->ApplyBlock(block);
  }
  auto r1 = online1->Rebalance();
  auto r2 = online2->Rebalance();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->num_shards(), kShards);
  EXPECT_TRUE(r1->Validate().ok()) << r1->Validate().ToString();
  EXPECT_TRUE(*r1 == *r2) << "online path not deterministic";
  // CurrentAllocation reflects the rebalanced mapping.
  EXPECT_TRUE(online1->CurrentAllocation() == *r1);
}

TEST_P(AllocatorConformance, BeginRebalanceSplitIsSupportedAndEquivalent) {
  // The snapshot/accumulate contract every registered strategy must honor
  // so the engine's background allocator can rebalance it concurrently:
  // (a) BeginRebalance() is supported (non-null task);
  // (b) the task computes the same mapping the synchronous Rebalance()
  //     produces at equal inputs, even when more blocks are absorbed
  //     between the snapshot and Commit();
  // (c) after Commit(), the allocator continues exactly like the
  //     synchronous instance (the NEXT rebalance also agrees).
  const Workload& w = SharedWorkload();
  const AllocatorOptions options = OptionsForWorkload(w);
  auto split = MakeAllocator(GetParam(), options);
  auto sync = MakeAllocator(GetParam(), options);
  ASSERT_TRUE(split.ok() && sync.ok());
  OnlineAllocator* online_split = (*split)->AsOnline();
  OnlineAllocator* online_sync = (*sync)->AsOnline();
  if (online_split == nullptr) {
    GTEST_SKIP() << GetParam() << " is one-shot only";
  }
  ASSERT_NE(online_sync, nullptr);

  const auto& blocks = w.ledger.blocks();
  const size_t half = blocks.size() / 2;
  for (size_t b = 0; b < half; ++b) {
    online_split->ApplyBlock(blocks[b]);
    online_sync->ApplyBlock(blocks[b]);
  }
  // (a) the split path snapshots here...
  std::unique_ptr<RebalanceTask> task = online_split->BeginRebalance();
  ASSERT_NE(task, nullptr)
      << GetParam() << " must support the snapshot/accumulate split";
  // ...while the rest of the ledger keeps streaming into the allocator.
  for (size_t b = half; b < blocks.size(); ++b) {
    online_split->ApplyBlock(blocks[b]);
  }
  Result<alloc::Allocation> task_mapping = task->Run();
  ASSERT_TRUE(task_mapping.ok()) << task_mapping.status().ToString();
  ASSERT_TRUE(task->Commit().ok());
  // (b) the synchronous instance rebalanced at the same point...
  Result<alloc::Allocation> sync_mapping = online_sync->Rebalance();
  ASSERT_TRUE(sync_mapping.ok()) << sync_mapping.status().ToString();
  EXPECT_TRUE(*task_mapping == *sync_mapping)
      << "background task mapping diverged from synchronous Rebalance";
  // ...and absorbs the same tail afterwards.
  for (size_t b = half; b < blocks.size(); ++b) {
    online_sync->ApplyBlock(blocks[b]);
  }
  // (c) both instances continue identically.
  Result<alloc::Allocation> next_split = online_split->Rebalance();
  Result<alloc::Allocation> next_sync = online_sync->Rebalance();
  ASSERT_TRUE(next_split.ok() && next_sync.ok());
  EXPECT_TRUE(*next_split == *next_sync)
      << "state after Commit() diverged from the synchronous path";
}

TEST_P(AllocatorConformance, BeginRebalanceTaskMatchesCurrentAllocation) {
  // After Commit(), CurrentAllocation() must reflect the task's mapping
  // (the same promise Rebalance() makes).
  const Workload& w = SharedWorkload();
  const AllocatorOptions options = OptionsForWorkload(w);
  auto made = MakeAllocator(GetParam(), options);
  ASSERT_TRUE(made.ok());
  OnlineAllocator* online = (*made)->AsOnline();
  if (online == nullptr) {
    GTEST_SKIP() << GetParam() << " is one-shot only";
  }
  for (const chain::Block& block : w.ledger.blocks()) {
    online->ApplyBlock(block);
  }
  std::unique_ptr<RebalanceTask> task = online->BeginRebalance();
  ASSERT_NE(task, nullptr);
  Result<alloc::Allocation> mapping = task->Run();
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  ASSERT_TRUE(task->Commit().ok());
  EXPECT_TRUE(online->CurrentAllocation() == *mapping);
}

std::string SanitizeName(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllocatorConformance,
                         ::testing::ValuesIn(RegisteredNames()),
                         SanitizeName);

}  // namespace
}  // namespace txallo::allocator

// Unit tests for the allocator registry and its key=value options parser:
// unknown names, unknown keys and malformed values must all fail loudly,
// and every registered name must construct and describe itself.
#include <gtest/gtest.h>

#include <algorithm>

#include "txallo/allocator/adapters.h"
#include "txallo/allocator/registry.h"

namespace txallo::allocator {
namespace {

AllocatorOptions BaseOptions(const chain::AccountRegistry* registry = nullptr) {
  AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(1'000, 4, 2.0);
  options.registry = registry;
  return options;
}

TEST(ParseOptionListTest, ParsesKeyValuePairs) {
  auto options = ParseOptionList("a=1,b=two,c=3.5");
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->size(), 3u);
  EXPECT_EQ(options->at("a"), "1");
  EXPECT_EQ(options->at("b"), "two");
  EXPECT_EQ(options->at("c"), "3.5");
}

TEST(ParseOptionListTest, EmptyStringIsNoOptions) {
  auto options = ParseOptionList("");
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options->empty());
}

TEST(ParseOptionListTest, RejectsClauseWithoutEquals) {
  auto options = ParseOptionList("a=1,bogus");
  ASSERT_FALSE(options.ok());
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("bogus"), std::string::npos);
}

TEST(ParseOptionListTest, RejectsEmptyKey) {
  EXPECT_FALSE(ParseOptionList("=1").ok());
}

TEST(ParseOptionListTest, RejectsDuplicateKey) {
  auto options = ParseOptionList("a=1,a=2");
  ASSERT_FALSE(options.ok());
  EXPECT_NE(options.status().message().find("duplicate"), std::string::npos);
}

TEST(ParseAllocatorSpecTest, NameOnly) {
  auto spec = ParseAllocatorSpec("metis");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "metis");
  EXPECT_TRUE(spec->options.empty());
}

TEST(ParseAllocatorSpecTest, NameWithOptions) {
  auto spec = ParseAllocatorSpec("txallo-hybrid:global-every=4");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "txallo-hybrid");
  EXPECT_EQ(spec->options.at("global-every"), "4");
}

TEST(ParseAllocatorSpecTest, RejectsEmptyName) {
  EXPECT_FALSE(ParseAllocatorSpec("").ok());
  EXPECT_FALSE(ParseAllocatorSpec(":a=1").ok());
}

TEST(RegistryTest, RegisteredNamesSortedUniqueAndComplete) {
  const std::vector<std::string> names = RegisteredNames();
  EXPECT_GE(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  for (const char* expected :
       {"broker", "hash", "louvain", "metis", "shard-scheduler",
        "txallo-global", "txallo-hybrid"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing allocator: " << expected;
  }
}

TEST(RegistryTest, EveryNameConstructsAndDescribes) {
  chain::AccountRegistry registry;
  registry.Intern("0xa");
  for (const std::string& name : RegisteredNames()) {
    auto made = MakeAllocator(name, BaseOptions(&registry));
    ASSERT_TRUE(made.ok()) << name << ": " << made.status().ToString();
    EXPECT_EQ((*made)->Name(), name);
    EXPECT_FALSE(DescribeAllocator(name).empty()) << name;
  }
}

TEST(RegistryTest, UnknownNameListsRegisteredOnes) {
  auto made = MakeAllocator("nope", BaseOptions());
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kNotFound);
  EXPECT_NE(made.status().message().find("metis"), std::string::npos);
}

TEST(RegistryTest, UnknownOptionKeyIsRejected) {
  AllocatorOptions options = BaseOptions();
  options.extra["typo"] = "1";
  auto made = MakeAllocator("metis", options);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(made.status().message().find("typo"), std::string::npos);
}

TEST(RegistryTest, MalformedOptionValueIsRejected) {
  chain::AccountRegistry registry;
  auto made = MakeAllocatorFromSpec("txallo-hybrid:global-every=abc",
                                    BaseOptions(&registry));
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(made.status().message().find("global-every"), std::string::npos);
}

TEST(RegistryTest, OutOfRangeOptionValueIsRejected) {
  EXPECT_FALSE(MakeAllocatorFromSpec("metis:imbalance=0.5",
                                     BaseOptions()).ok());
  EXPECT_FALSE(MakeAllocatorFromSpec("louvain:resolution=0",
                                     BaseOptions()).ok());
}

TEST(RegistryTest, TxAlloNamesRequireRegistry) {
  auto made = MakeAllocator("txallo-global", BaseOptions(nullptr));
  ASSERT_FALSE(made.ok());
  EXPECT_NE(made.status().message().find("registry"), std::string::npos);
}

TEST(RegistryTest, BrokerWrapsConfigurableInner) {
  chain::AccountRegistry registry;
  auto made = MakeAllocatorFromSpec("broker:inner=txallo-global,brokers=8",
                                    BaseOptions(&registry));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto* overlay = dynamic_cast<BrokerOverlay*>(made->get());
  ASSERT_NE(overlay, nullptr);
  EXPECT_EQ(overlay->inner().Name(), "txallo-global");
}

TEST(RegistryTest, BrokerRejectsUnknownAndSelfInner) {
  EXPECT_FALSE(MakeAllocatorFromSpec("broker:inner=nope", BaseOptions()).ok());
  EXPECT_FALSE(
      MakeAllocatorFromSpec("broker:inner=broker", BaseOptions()).ok());
}

TEST(RegistryTest, ContribIsRegisteredWithRangeChecks) {
  chain::AccountRegistry registry;
  auto made = MakeAllocatorFromSpec("contrib:imbalance=1.5,stress-weight=2",
                                    BaseOptions(&registry));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  EXPECT_FALSE(
      MakeAllocatorFromSpec("contrib:imbalance=0.9", BaseOptions()).ok());
  EXPECT_FALSE(
      MakeAllocatorFromSpec("contrib:stress-weight=-1", BaseOptions()).ok());
}

TEST(RegistryTest, DescribeAllocatorsCoversEveryRegisteredName) {
  const std::vector<AllocatorDoc> docs = DescribeAllocators();
  const std::vector<std::string> names = RegisteredNames();
  ASSERT_EQ(docs.size(), names.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].name, names[i]);
    EXPECT_FALSE(docs[i].summary.empty()) << docs[i].name;
    for (const AllocatorOptionDoc& option : docs[i].options) {
      EXPECT_FALSE(option.key.empty()) << docs[i].name;
      EXPECT_FALSE(option.type.empty()) << docs[i].name;
      EXPECT_FALSE(option.default_value.empty()) << docs[i].name;
      EXPECT_FALSE(option.help.empty())
          << docs[i].name << ":" << option.key;
    }
  }
}

TEST(RegistryTest, DocumentedDefaultsAreAcceptedByTheFactory) {
  // The metadata cannot drift from the factories: every documented option,
  // set to its documented default, must construct.
  chain::AccountRegistry registry;
  registry.Intern("0xa");
  for (const AllocatorDoc& doc : DescribeAllocators()) {
    AllocatorOptions options = BaseOptions(&registry);
    for (const AllocatorOptionDoc& option : doc.options) {
      options.extra[option.key] = option.default_value;
    }
    auto made = MakeAllocator(doc.name, options);
    EXPECT_TRUE(made.ok()) << doc.name << ": " << made.status().ToString();
  }
}

TEST(RegistryTest, UsageTextMentionsEveryNameAndOptionKey) {
  const std::string usage = AllocatorUsageText();
  for (const AllocatorDoc& doc : DescribeAllocators()) {
    EXPECT_NE(usage.find(doc.name), std::string::npos) << doc.name;
    for (const AllocatorOptionDoc& option : doc.options) {
      EXPECT_NE(usage.find(option.key + "=<"), std::string::npos)
          << doc.name << ":" << option.key;
    }
  }
}

TEST(RegistryTest, SpecOptionsOverrideBaseExtra) {
  chain::AccountRegistry registry;
  AllocatorOptions options = BaseOptions(&registry);
  options.extra["global-every"] = "2";
  // The spec string wins over the pre-seeded extra.
  auto made = MakeAllocatorFromSpec("txallo-hybrid:global-every=5", options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
}

}  // namespace
}  // namespace txallo::allocator

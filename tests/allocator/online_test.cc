// Online allocators driving the parallel engine: every registered strategy
// streams a ledger through engine::RunReallocatedStream — the multi-method
// engine path the unified API exists for. Runs under TSan via the "engine"
// label (allocation snapshots race live ingest).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "txallo/allocator/registry.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::allocator {
namespace {

class OnlineAllocatorEngine : public ::testing::TestWithParam<std::string> {};

TEST_P(OnlineAllocatorEngine, ReallocatesLiveEngineLosslessly) {
  workload::EthereumLikeConfig config;
  config.num_accounts = 800;
  config.txs_per_block = 50;
  config.num_blocks = 24;
  config.num_communities = 10;
  config.seed = 13;
  config.drift_interval_blocks = 8;
  workload::EthereumLikeGenerator generator(config);
  chain::Ledger ledger = generator.GenerateLedger(config.num_blocks);

  const uint32_t k = 4;
  AllocatorOptions options;
  options.params =
      alloc::AllocationParams::ForExperiment(ledger.num_transactions(), k, 2.0);
  options.registry = &generator.registry();
  auto made = MakeAllocator(GetParam(), options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  OnlineAllocator* online = (*made)->AsOnline();
  if (online == nullptr) {
    GTEST_SKIP() << GetParam() << " is one-shot only";
  }

  engine::EngineConfig engine_config;
  engine_config.num_shards = k;
  engine_config.num_threads = 2;
  engine_config.work.capacity_per_block =
      2.0 * static_cast<double>(config.txs_per_block) / k;
  engine_config.hash_route_unassigned = true;
  engine::ParallelEngine engine(engine_config, nullptr);

  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 6;
  auto result =
      engine::RunReallocatedStream(ledger, online, &engine, pipeline);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 4 windows of 6 blocks; the trailing window gets no update.
  EXPECT_EQ(result->epochs, 3u);
  EXPECT_EQ(result->report.reallocations, 4u);  // Initial install + 3 epochs.
  EXPECT_EQ(result->report.sim.submitted, ledger.num_transactions());
  EXPECT_EQ(result->report.sim.committed, ledger.num_transactions());
  // The pipeline skips the trailing update, so accounts born in the final
  // window may still be unassigned; one more Rebalance (what a caller
  // continuing the stream would do) must place every account that has
  // actually transacted into a shard < k. (Never-transacting domain
  // padding may stay unassigned — the engine hash-routes it.)
  auto final_mapping = online->Rebalance();
  ASSERT_TRUE(final_mapping.ok()) << final_mapping.status().ToString();
  EXPECT_EQ(final_mapping->num_shards(), k);
  ledger.ForEachTransaction([&](const chain::Transaction& tx) {
    for (chain::AccountId account : tx.accounts()) {
      ASSERT_LT(final_mapping->shard_of(account), k)
          << "transacting account " << account << " unassigned";
    }
  });
}

std::string SanitizeName(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, OnlineAllocatorEngine,
                         ::testing::ValuesIn(RegisteredNames()),
                         SanitizeName);

}  // namespace
}  // namespace txallo::allocator

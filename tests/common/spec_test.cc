// The uniform "name[:key=value,...]" grammar shared by --allocator= and
// --scenario=. The registries own name/key/value semantics; this layer owns
// the split rules, so the edge cases live here once.
#include "txallo/common/spec.h"

#include <gtest/gtest.h>

namespace txallo::common {
namespace {

TEST(ParseSpecTest, BareNameHasNoOptions) {
  auto parsed = ParseSpec("ethereum");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "ethereum");
  EXPECT_TRUE(parsed->options.empty());
}

TEST(ParseSpecTest, NameWithOptionsSplitsOnColonAndCommas) {
  auto parsed = ParseSpec("spike:peak-share=0.7,start=3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "spike");
  ASSERT_EQ(parsed->options.size(), 2u);
  EXPECT_EQ(parsed->options.at("peak-share"), "0.7");
  EXPECT_EQ(parsed->options.at("start"), "3");
}

TEST(ParseSpecTest, ValueMayContainEquals) {
  // Only the first '=' in a clause separates key from value.
  auto parsed = ParseSpec("x:expr=a=b");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->options.at("expr"), "a=b");
}

TEST(ParseSpecTest, TrailingColonMeansNoOptions) {
  auto parsed = ParseSpec("hash:");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "hash");
  EXPECT_TRUE(parsed->options.empty());
}

TEST(ParseSpecTest, EmptyClausesAreSkipped) {
  auto parsed = ParseSpec("x:a=1,,b=2,");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->options.size(), 2u);
}

TEST(ParseSpecTest, EmptyNameIsInvalid) {
  EXPECT_FALSE(ParseSpec("").ok());
  EXPECT_FALSE(ParseSpec(":a=1").ok());
  EXPECT_EQ(ParseSpec(":a=1").status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseSpecTest, MalformedClauseIsInvalid) {
  auto parsed = ParseSpec("x:noequals");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("noequals"), std::string::npos);
}

TEST(ParseOptionListTest, DuplicateKeyIsRejectedNotLastOneWins) {
  auto options = ParseOptionList("a=1,a=2");
  ASSERT_FALSE(options.ok());
  EXPECT_NE(options.status().message().find("'a'"), std::string::npos);
}

TEST(ParseOptionListTest, EmptyKeyIsRejected) {
  EXPECT_FALSE(ParseOptionList("=1").ok());
}

TEST(ParseOptionListTest, EmptyValueIsAllowed) {
  // The registries decide whether "" parses as their value type.
  auto options = ParseOptionList("a=");
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->at("a"), "");
}

}  // namespace
}  // namespace txallo::common

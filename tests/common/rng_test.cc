#include "txallo/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace txallo {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversSmallRangeUniformly) {
  Rng rng(11);
  constexpr uint64_t kBound = 7;
  constexpr int kDraws = 70'000;
  int counts[kBound] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / kBound, kDraws / kBound * 0.1);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(19);
  constexpr int kDraws = 200'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, PoissonMeanMatchesLambdaSmall) {
  Rng rng(23);
  constexpr int kDraws = 100'000;
  uint64_t total = 0;
  for (int i = 0; i < kDraws; ++i) total += rng.NextPoisson(3.5);
  EXPECT_NEAR(total / static_cast<double>(kDraws), 3.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLambdaLarge) {
  Rng rng(29);
  constexpr int kDraws = 50'000;
  uint64_t total = 0;
  for (int i = 0; i < kDraws; ++i) total += rng.NextPoisson(200.0);
  EXPECT_NEAR(total / static_cast<double>(kDraws), 200.0, 2.0);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(31);
  constexpr int kDraws = 100'000;
  const double p = 0.25;
  uint64_t total = 0;
  for (int i = 0; i < kDraws; ++i) total += rng.NextGeometric(p);
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(total / static_cast<double>(kDraws), 3.0, 0.1);
}

TEST(SplitMix64Test, KnownSequenceIsReproducible) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
  EXPECT_NE(s1, 42u);
}

}  // namespace
}  // namespace txallo

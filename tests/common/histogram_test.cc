// common::Histogram: exact counts, nearest-rank percentiles, and the
// property the determinism contract leans on — two histograms built from
// the same multiset of samples compare equal regardless of arrival order.
#include "txallo/common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace txallo::common {
namespace {

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0u);
  EXPECT_EQ(h.CountAt(7), 0u);
}

TEST(HistogramTest, BasicCountsMinMaxMean) {
  Histogram h;
  for (uint64_t v : {4u, 1u, 4u, 9u, 2u}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_EQ(h.CountAt(4), 2u);
  EXPECT_EQ(h.CountAt(3), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST(HistogramTest, NearestRankPercentilesAreObservedValues) {
  // Values 1..100, one each: p50 = 50th smallest = 50, p99 = 99, p99.9
  // rounds up to the 100th sample = 100.
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 1u);
  EXPECT_EQ(h.Percentile(50.0), 50u);
  EXPECT_EQ(h.Percentile(99.0), 99u);
  EXPECT_EQ(h.Percentile(99.9), 100u);
  EXPECT_EQ(h.Percentile(100.0), 100u);
  // Out-of-range inputs clamp rather than misbehave.
  EXPECT_EQ(h.Percentile(-5.0), 1u);
  EXPECT_EQ(h.Percentile(250.0), 100u);
}

TEST(HistogramTest, PercentileIsAlwaysARecordedValue) {
  // Sparse values: every percentile must land on 3, 10 or 1000 — never an
  // interpolation between them.
  Histogram h;
  h.Record(3);
  h.Record(10);
  h.Record(1000);
  for (double p : {0.0, 10.0, 33.4, 50.0, 66.7, 90.0, 99.9, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_TRUE(v == 3 || v == 10 || v == 1000) << "p" << p << " -> " << v;
  }
  EXPECT_EQ(h.Percentile(33.0), 3u);   // ceil(0.33*3)=1st sample
  EXPECT_EQ(h.Percentile(34.0), 10u);  // ceil(0.34*3)=2nd sample
}

TEST(HistogramTest, OrderIndependenceAndEquality) {
  std::vector<uint64_t> samples;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) samples.push_back(rng() % 257);

  Histogram forward;
  for (uint64_t v : samples) forward.Record(v);
  std::shuffle(samples.begin(), samples.end(), rng);
  Histogram shuffled;
  for (uint64_t v : samples) shuffled.Record(v);

  EXPECT_TRUE(forward == shuffled);
  EXPECT_EQ(forward.Percentile(99.0), shuffled.Percentile(99.0));

  shuffled.Record(0);
  EXPECT_FALSE(forward == shuffled);
}

TEST(HistogramTest, MergeMatchesRecordingEverythingIntoOne) {
  Histogram a, b, all;
  for (uint64_t v = 0; v < 100; ++v) {
    (v % 3 == 0 ? a : b).Record(v * v % 41);
    all.Record(v * v % 41);
  }
  a.Merge(b);
  EXPECT_TRUE(a == all);
  EXPECT_EQ(a.count(), 100u);

  // Merging an empty histogram is a no-op; merging into empty copies.
  Histogram empty;
  a.Merge(empty);
  EXPECT_TRUE(a == all);
  empty.Merge(all);
  EXPECT_TRUE(empty == all);
}

TEST(HistogramTest, EqualityIgnoresDenseTailShape) {
  // A histogram that once saw a large value records nothing there after —
  // equality is over the sample multiset, not the internal vector length.
  Histogram a, b;
  a.Record(5);
  b.Record(5);
  EXPECT_TRUE(a == b);
  a.Record(1000);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace txallo::common

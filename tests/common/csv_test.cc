#include "txallo/common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace txallo {
namespace {

TEST(CsvSplitTest, PlainFields) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvSplitTest, EmptyFields) {
  auto fields = SplitCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvSplitTest, QuotedCommaAndQuote) {
  auto fields = SplitCsvLine(R"(x,"a,b","say ""hi""")");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "a,b");
  EXPECT_EQ(fields[2], "say \"hi\"");
}

TEST(CsvSplitTest, SwallowsCarriageReturn) {
  auto fields = SplitCsvLine("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvEscapeTest, PassthroughSimple) {
  EXPECT_EQ(EscapeCsvField("hello"), "hello");
}

TEST(CsvEscapeTest, QuotesCommaAndQuote) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, QuotesLeadingTrailingSpace) {
  EXPECT_EQ(EscapeCsvField(" x"), "\" x\"");
  EXPECT_EQ(EscapeCsvField("x "), "\"x \"");
}

TEST(CsvRoundTripTest, WriteThenReadBack) {
  const std::string path = ::testing::TempDir() + "/txallo_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.WriteRow({"h1", "h2"}).ok());
    ASSERT_TRUE(writer.WriteRow({"plain", "with,comma"}).ok());
    ASSERT_TRUE(writer.WriteRow({"q\"uote", ""}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[1][1], "with,comma");
  EXPECT_EQ((*rows)[2][0], "q\"uote");
  std::remove(path.c_str());
}

TEST(CsvReadTest, MissingFileIsIOError) {
  auto rows = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace txallo

#include "txallo/common/flags.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace txallo {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()));
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = ParseArgs({"--txs=5000", "--eta=2.5", "--name=run1"});
  EXPECT_EQ(f.GetInt("txs", 0), 5000);
  EXPECT_DOUBLE_EQ(f.GetDouble("eta", 0.0), 2.5);
  EXPECT_EQ(f.GetString("name", ""), "run1");
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = ParseArgs({"--txs", "7000"});
  EXPECT_EQ(f.GetInt("txs", 0), 7000);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = ParseArgs({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("txs", 123), 123);
  EXPECT_DOUBLE_EQ(f.GetDouble("eta", 4.5), 4.5);
  EXPECT_FALSE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.Has("txs"));
}

TEST(FlagsTest, MalformedNumberFallsBackToDefault) {
  Flags f = ParseArgs({"--txs=abc"});
  EXPECT_EQ(f.GetInt("txs", 55), 55);
}

TEST(FlagsTest, BoolSpellings) {
  Flags f = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
}

TEST(BenchScaleTest, FlagOverridesPreset) {
  Flags f = ParseArgs({"--scale=small", "--txs=999", "--max-shards=12"});
  BenchScale scale = ResolveBenchScale(f);
  EXPECT_EQ(scale.num_transactions, 999u);
  EXPECT_EQ(scale.max_shards, 12);
}

TEST(BenchScaleTest, ThreadsFlagPinsEngineParallelism) {
  Flags f = ParseArgs({"--threads=6"});
  EXPECT_EQ(ResolveBenchScale(f).num_threads, 6);
}

TEST(BenchScaleTest, ThreadsDefaultsToAuto) {
  // 0 = let the engine pick (hardware concurrency clamped to shards).
  // Hermetic against the caller's environment.
  ::unsetenv("TXALLO_THREADS");
  Flags f = ParseArgs({});
  EXPECT_EQ(ResolveBenchScale(f).num_threads, 0);
}

TEST(BenchScaleTest, ThreadsEnvIsTheFallback) {
  ::setenv("TXALLO_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(ResolveBenchScale(ParseArgs({})).num_threads, 5);
  // An explicit flag still wins over the environment.
  EXPECT_EQ(ResolveBenchScale(ParseArgs({"--threads=2"})).num_threads, 2);
  ::unsetenv("TXALLO_THREADS");
}

TEST(BenchScaleTest, NegativeThreadsClampsToAuto) {
  // Explicit nonsense clamps to auto; it must NOT fall through to the env.
  ::setenv("TXALLO_THREADS", "7", /*overwrite=*/1);
  Flags f = ParseArgs({"--threads=-3"});
  EXPECT_EQ(ResolveBenchScale(f).num_threads, 0);
  ::unsetenv("TXALLO_THREADS");
}

TEST(BenchScaleTest, PresetsAreOrdered) {
  Flags small = ParseArgs({"--scale=small"});
  Flags medium = ParseArgs({"--scale=medium"});
  Flags large = ParseArgs({"--scale=large"});
  EXPECT_LT(ResolveBenchScale(small).num_transactions,
            ResolveBenchScale(medium).num_transactions);
  EXPECT_LT(ResolveBenchScale(medium).num_transactions,
            ResolveBenchScale(large).num_transactions);
}

}  // namespace
}  // namespace txallo

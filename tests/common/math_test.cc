#include "txallo/common/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace txallo {
namespace {

TEST(EdgeSplitTest, MatchesCombinationFormula) {
  EXPECT_EQ(EdgeSplitCount(2), 1u);   // C(2,2) = 1
  EXPECT_EQ(EdgeSplitCount(3), 3u);   // C(3,2) = 3
  EXPECT_EQ(EdgeSplitCount(4), 6u);
  EXPECT_EQ(EdgeSplitCount(5), 10u);
}

TEST(EdgeSplitTest, SelfLoopConvention) {
  // A single-account transaction maps to one self-loop edge.
  EXPECT_EQ(EdgeSplitCount(1), 1u);
  EXPECT_EQ(EdgeSplitCount(0), 1u);
}

TEST(ClampThroughputTest, SufficientCapacityPassesThrough) {
  EXPECT_DOUBLE_EQ(ClampThroughput(10.0, 50.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(ClampThroughput(10.0, 100.0, 100.0), 10.0);  // Boundary.
}

TEST(ClampThroughputTest, OverloadScalesByCapacityRatio) {
  // σ = 2λ -> half the transactions complete (Eq. 3).
  EXPECT_DOUBLE_EQ(ClampThroughput(10.0, 200.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(ClampThroughput(9.0, 300.0, 100.0), 3.0);
}

TEST(LatencyTest, UnderloadedShardIsOneBlock) {
  EXPECT_DOUBLE_EQ(AverageLatencyBlocks(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(AverageLatencyBlocks(50.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(AverageLatencyBlocks(100.0, 100.0), 1.0);
}

TEST(LatencyTest, IntegerNormalizedWorkloadIsArithmeticMean) {
  // σ̂ = n -> latencies 1..n uniformly -> mean (n+1)/2.
  EXPECT_NEAR(AverageLatencyBlocks(200.0, 100.0), 1.5, 1e-12);
  EXPECT_NEAR(AverageLatencyBlocks(300.0, 100.0), 2.0, 1e-12);
  EXPECT_NEAR(AverageLatencyBlocks(1000.0, 100.0), 5.5, 1e-12);
}

TEST(LatencyTest, MatchesPaperClosedFormOffIntegers) {
  // ζ = ⌊σ̂⌋⌈σ̂⌉/(2σ̂) + (σ̂-⌊σ̂⌋)⌈σ̂⌉/σ̂ (Eq. 4), valid off integers.
  for (double norm : {1.3, 2.5, 3.7, 9.99}) {
    const double floor = std::floor(norm);
    const double ceil = std::ceil(norm);
    const double paper = floor * ceil / (2.0 * norm) +
                         (norm - floor) * ceil / norm;
    EXPECT_NEAR(AverageLatencyBlocks(norm * 100.0, 100.0), paper, 1e-12)
        << "norm=" << norm;
  }
}

TEST(LatencyTest, ContinuousAtIntegerBoundary) {
  const double below = AverageLatencyBlocks(299.999'99, 100.0);
  const double at = AverageLatencyBlocks(300.0, 100.0);
  const double above = AverageLatencyBlocks(300.000'01, 100.0);
  EXPECT_NEAR(below, at, 1e-4);
  EXPECT_NEAR(above, at, 1e-4);
}

TEST(LatencyTest, MonotoneInWorkload) {
  double prev = 0.0;
  for (double sigma = 0.0; sigma <= 2000.0; sigma += 37.0) {
    const double z = AverageLatencyBlocks(sigma, 100.0);
    EXPECT_GE(z, prev - 1e-12);
    prev = z;
  }
}

TEST(LatencyTest, ZeroCapacityDefinedAsOne) {
  EXPECT_DOUBLE_EQ(AverageLatencyBlocks(10.0, 0.0), 1.0);
}

TEST(WorstCaseLatencyTest, CeilOfNormalizedWorkload) {
  EXPECT_DOUBLE_EQ(WorstCaseLatencyBlocks(50.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(WorstCaseLatencyBlocks(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(WorstCaseLatencyBlocks(101.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(WorstCaseLatencyBlocks(999.0, 100.0), 10.0);
}

TEST(StdDevTest, KnownValues) {
  EXPECT_DOUBLE_EQ(PopulationStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({1.0, 1.0, 1.0}), 0.0);
  // Population stddev of {2, 4}: mean 3, deviations 1 -> 1.
  EXPECT_DOUBLE_EQ(PopulationStdDev({2.0, 4.0}), 1.0);
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace txallo

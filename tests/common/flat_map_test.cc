// FlatMap / Arena: the deterministic hot-path containers the delta-log
// graph and the shard state DB are built on. The load-bearing properties
// are (a) std::unordered_map-equivalent lookup semantics under randomized
// insert/erase schedules and (b) iteration order that is a pure function of
// the operation sequence — never of hash seeds or load factors.
#include "txallo/common/flat_map.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "txallo/common/arena.h"
#include "txallo/common/rng.h"

namespace txallo::common {
namespace {

TEST(FlatMapTest, EmptyMap) {
  FlatMap<uint32_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_EQ(map.count(7), 0u);
  EXPECT_FALSE(map.contains(7));
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMapTest, InsertFindOverwrite) {
  FlatMap<uint32_t, int> map;
  auto [it, inserted] = map.emplace(4u, 40);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, 40);
  auto [it2, inserted2] = map.emplace(4u, 99);
  EXPECT_FALSE(inserted2);  // emplace does not overwrite.
  EXPECT_EQ(it2->second, 40);
  map[4u] = 41;  // operator[] does.
  EXPECT_EQ(map.find(4u)->second, 41);
  map[5u] = 50;  // ... and default-constructs on miss.
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMapTest, IterationIsInsertionOrder) {
  FlatMap<uint32_t, int> map;
  // Keys chosen to collide modulo small power-of-two tables: iteration
  // order must still be the emplace order.
  const std::vector<uint32_t> keys = {1024, 7, 2048, 15, 4096, 3, 8192};
  for (size_t i = 0; i < keys.size(); ++i) {
    map.emplace(keys[i], static_cast<int>(i));
  }
  size_t i = 0;
  for (const auto& entry : map) {
    EXPECT_EQ(entry.first, keys[i]);
    EXPECT_EQ(entry.second, static_cast<int>(i));
    ++i;
  }
  EXPECT_EQ(i, keys.size());
}

TEST(FlatMapTest, EraseSwapsLastIntoHole) {
  FlatMap<uint32_t, int> map;
  for (uint32_t k = 0; k < 5; ++k) map.emplace(k, static_cast<int>(k * 10));
  EXPECT_EQ(map.erase(1u), 1u);
  // Erase is swap-with-last on the dense array: deterministic permutation.
  std::vector<uint32_t> order;
  for (const auto& entry : map) order.push_back(entry.first);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 4, 2, 3}));
  for (uint32_t k : order) EXPECT_EQ(map.find(k)->second, static_cast<int>(k * 10));
  EXPECT_EQ(map.find(1u), map.end());
}

TEST(FlatMapTest, EraseByIterator) {
  FlatMap<uint64_t, std::string> map;
  map.emplace(10u, "a");
  map.emplace(20u, "b");
  auto it = map.find(10u);
  ASSERT_NE(it, map.end());
  map.erase(it);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.find(10u), map.end());
  EXPECT_EQ(map.find(20u)->second, "b");
}

TEST(FlatMapTest, StringKeys) {
  FlatMap<std::string, uint32_t> map;
  map.emplace(std::string("acct-1"), 1u);
  map.emplace(std::string("acct-2"), 2u);
  EXPECT_EQ(map.find("acct-1")->second, 1u);
  EXPECT_EQ(map.find("acct-3"), map.end());
}

// Randomized schedule: FlatMap must agree with std::unordered_map on every
// lookup after any interleaving of inserts, overwrites, and erases — and
// two FlatMaps fed the same schedule must iterate identically (the
// determinism contract the lint's unordered-iter rule cannot give
// std::unordered_map).
TEST(FlatMapTest, RandomizedEquivalenceAndDeterminism) {
  Rng rng(2024);
  FlatMap<uint32_t, uint64_t> map;
  FlatMap<uint32_t, uint64_t> twin;
  std::unordered_map<uint32_t, uint64_t> reference;
  for (int step = 0; step < 20'000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(512));
    const uint64_t action = rng.NextBounded(4);
    if (action == 0) {
      const size_t erased = map.erase(key);
      twin.erase(key);
      EXPECT_EQ(erased, reference.erase(key));
    } else {
      const uint64_t value = rng.NextUint64();
      map[key] = value;
      twin[key] = value;
      reference[key] = value;
    }
    if (step % 257 == 0) {
      EXPECT_EQ(map.size(), reference.size());
      for (const auto& [k, v] : reference) {
        auto it = map.find(k);
        ASSERT_NE(it, map.end());
        EXPECT_EQ(it->second, v);
      }
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& entry : map) {
    auto it = reference.find(entry.first);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(entry.second, it->second);
  }
  // Same schedule => byte-identical iteration order.
  ASSERT_EQ(map.size(), twin.size());
  auto a = map.begin();
  auto b = twin.begin();
  for (; a != map.end(); ++a, ++b) {
    EXPECT_EQ(a->first, b->first);
    EXPECT_EQ(a->second, b->second);
  }
}

TEST(FlatMapTest, CopyPreservesOrderAndLookup) {
  FlatMap<uint32_t, int> map;
  for (uint32_t k = 0; k < 100; ++k) map.emplace(k * 37u, static_cast<int>(k));
  const FlatMap<uint32_t, int> copy = map;
  EXPECT_EQ(copy.size(), map.size());
  auto a = map.begin();
  auto b = copy.begin();
  for (; a != map.end(); ++a, ++b) EXPECT_EQ(a->first, b->first);
  EXPECT_EQ(copy.find(37u * 50u)->second, 50);
  EXPECT_GT(copy.MemoryBytes(), 0u);
}

TEST(FlatMapTest, ReserveKeepsContents) {
  FlatMap<uint32_t, int> map;
  map.emplace(1u, 10);
  map.reserve(10'000);
  EXPECT_EQ(map.find(1u)->second, 10);
  for (uint32_t k = 0; k < 1000; ++k) map.emplace(100u + k, 0);
  EXPECT_EQ(map.size(), 1001u);
}

TEST(ArenaTest, AppendViewRoundTrip) {
  Arena<int> arena;
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {4, 5};
  const auto ra = arena.Append(a);
  const auto rb = arena.Append(b);
  EXPECT_EQ(arena.size(), 5u);
  const auto va = arena.View(ra);
  ASSERT_EQ(va.size(), 3u);
  EXPECT_EQ(va[0], 1);
  EXPECT_EQ(va[2], 3);
  const auto vb = arena.View(rb);
  ASSERT_EQ(vb.size(), 2u);
  EXPECT_EQ(vb[1], 5);
}

TEST(ArenaTest, RefsSurviveCopiesAndGrowth) {
  Arena<int> arena;
  const std::vector<int> first = {7, 8};
  const auto ref = arena.Append(first);
  // Force reallocation; the (offset, length) ref must stay valid.
  std::vector<int> filler(10'000, 0);
  arena.Append(filler);
  const Arena<int> copy = arena;  // Refs are offsets, so they transfer.
  EXPECT_EQ(copy.View(ref)[0], 7);
  EXPECT_EQ(copy.View(ref)[1], 8);
  EXPECT_EQ(copy.MemoryBytes(), arena.MemoryBytes());
}

TEST(ArenaTest, ClearEmptiesBuffer) {
  Arena<int> arena;
  arena.Append(std::vector<int>{1});
  arena.Clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace txallo::common

#include "txallo/common/zipf.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace txallo {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(1000, 1.1);
  double total = 0.0;
  for (uint64_t r = 0; r < 1000; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler zipf(100, 0.8);
  for (uint64_t r = 1; r < 100; ++r) {
    EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1));
  }
}

TEST(ZipfTest, OutOfRangePmfIsZero) {
  ZipfSampler zipf(10, 1.0);
  EXPECT_EQ(zipf.Pmf(10), 0.0);
  EXPECT_EQ(zipf.Pmf(1000), 0.0);
}

TEST(ZipfTest, SampleStaysInRange) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(zipf.Sample(&rng), 50u);
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(7);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.08);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// Property sweep: empirical head mass matches the analytic PMF for a range
// of (n, s) combinations — the long-tail shape the workload depends on.
class ZipfSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ZipfSweep, EmpiricalHeadMassMatchesPmf) {
  auto [n, s] = GetParam();
  ZipfSampler zipf(n, s);
  Rng rng(101);
  constexpr int kDraws = 200'000;
  int head = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(&rng) == 0) ++head;
  }
  EXPECT_NEAR(head / static_cast<double>(kDraws), zipf.Pmf(0), 0.01)
      << "n=" << n << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfSweep,
    ::testing::Combine(::testing::Values(10, 100, 10'000),
                       ::testing::Values(0.5, 0.8, 1.0, 1.2)));

}  // namespace
}  // namespace txallo

#include "txallo/common/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace txallo {
namespace {

// NIST FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string a_million(1'000'000, 'a');
  EXPECT_EQ(DigestToHex(Sha256::Hash(a_million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg =
      "the quick brown fox jumps over the lazy dog multiple times to span "
      "several SHA-256 blocks and exercise the buffered update path";
  Sha256 h;
  for (char c : msg) h.Update(&c, 1);
  EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(Sha256::Hash(msg)));
}

TEST(Sha256Test, ChunkedUpdateAcrossBlockBoundary) {
  std::string msg(200, 'x');
  Sha256 h;
  h.Update(msg.data(), 63);
  h.Update(msg.data() + 63, 2);  // Straddles the 64-byte boundary.
  h.Update(msg.data() + 65, msg.size() - 65);
  EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(Sha256::Hash(msg)));
}

TEST(Sha256Test, Hash64IsDigestPrefix) {
  Sha256Digest d = Sha256::Hash("abc");
  uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) expected = (expected << 8) | d[i];
  EXPECT_EQ(Sha256::Hash64("abc"), expected);
}

TEST(Sha256Test, Hash64OverUint64IsStable) {
  // Regression pin: deterministic ordering keys must never change across
  // refactors, or every "deterministic" allocation changes with them.
  EXPECT_EQ(Sha256::Hash64(uint64_t{0}), Sha256::Hash64(uint64_t{0}));
  EXPECT_NE(Sha256::Hash64(uint64_t{0}), Sha256::Hash64(uint64_t{1}));
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("abc", 3);
  (void)h.Finish();
  h.Reset();
  h.Update("abc", 3);
  EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(Sha256::Hash("abc")));
}

TEST(Sha256Test, BucketsSpreadRoughlyUniformly) {
  // SHA256(address) mod k should spread accounts near-uniformly: the whole
  // premise of the hash-based baseline.
  constexpr int kShards = 16;
  constexpr int kAccounts = 16'000;
  int counts[kShards] = {0};
  for (int i = 0; i < kAccounts; ++i) {
    ++counts[Sha256::Hash64("acct-" + std::to_string(i)) % kShards];
  }
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], kAccounts / kShards / 2);
    EXPECT_LT(counts[s], kAccounts / kShards * 2);
  }
}

}  // namespace
}  // namespace txallo

#include "txallo/common/status.h"

#include <gtest/gtest.h>

namespace txallo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveStableNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsThroughMacro() {
  TXALLO_RETURN_NOT_OK(Status::IOError("disk"));
  return Status::OK();
}

Status SucceedsThroughMacro() {
  TXALLO_RETURN_NOT_OK(Status::OK());
  return Status::Internal("should reach here");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(FailsThroughMacro().code(), StatusCode::kIOError);
  EXPECT_EQ(SucceedsThroughMacro().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace txallo

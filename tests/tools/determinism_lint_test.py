#!/usr/bin/env python3
"""Self-test for tools/lint/determinism_lint.py.

Runs the linter as a subprocess (the exact way CI and developers invoke it)
against the seeded fixtures under tests/tools/fixtures/txallo/ and asserts:
  * each seeded violation is flagged with the right rule id and line,
  * escapes (`txallo-lint: allow(...)`) silence exactly their rule/line,
  * path scoping matches the real tree (sync.h exemption, unordered-iter
    only in trace-affecting directories),
  * exit codes: 1 with findings, 0 clean.

Registered as a CTest (label `tools`) by tests/tools/CMakeLists.txt.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

FINDING_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")

failures = []


def check(condition, label):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        failures.append(label)


def run_lint(lint, targets):
    proc = subprocess.run(
        [sys.executable, str(lint), *[str(t) for t in targets]],
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append(
                (Path(m.group("path")).name, int(m.group("line")),
                 m.group("rule")))
    return proc.returncode, findings


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--lint", required=True, type=Path)
    parser.add_argument("--fixtures", required=True, type=Path)
    args = parser.parse_args()
    fixtures = args.fixtures / "txallo"

    print("rule flagging:")
    rc, found = run_lint(args.lint,
                         [fixtures / "engine" / "raw_mutex_violation.cc"])
    rules = [f[2] for f in found]
    check(rc == 1, "raw_mutex fixture exits 1")
    check(rules.count("raw-sync") == 4,
          f"raw-sync flagged on include + 2 decls + lock_guard line "
          f"(got {rules.count('raw-sync')})")
    check(rules.count("raw-thread") == 1,
          f"raw-thread flagged on the thread member (got "
          f"{rules.count('raw-thread')})")

    rc, found = run_lint(args.lint,
                         [fixtures / "engine" / "wall_clock_violation.cc"])
    lines = sorted(f[1] for f in found)
    check(rc == 1, "wall_clock fixture exits 1")
    check(all(f[2] == "wall-clock" for f in found),
          "only wall-clock findings in the wall_clock fixture")
    check(len(found) == 3,
          f"system_clock + random_device + std::rand flagged, "
          f"steady_clock/comment/string not (got {len(found)}: {lines})")

    rc, found = run_lint(args.lint,
                         [fixtures / "engine" / "unordered_iter_violation.cc"])
    check(rc == 1, "unordered_iter fixture exits 1")
    check([f[2] for f in found] == ["unordered-iter", "unordered-iter"],
          f"both hash-order range-fors flagged, vector loop not "
          f"(got {found})")

    print("escapes:")
    rc, found = run_lint(args.lint, [fixtures / "engine" / "escaped_ok.cc"])
    check(rc == 0 and not found,
          f"fully escaped fixture lints clean (got {found})")

    rc, found = run_lint(args.lint, [fixtures / "engine" / "stale_escape.cc"])
    check(rc == 1, "stale_escape fixture exits 1")
    check(sorted(f[2] for f in found) == ["raw-sync", "wall-clock"],
          f"wrong-rule and non-adjacent escapes do not leak (got {found})")

    print("path scoping:")
    rc, found = run_lint(args.lint,
                         [fixtures / "sim" / "outside_scope_ok.cc"])
    check(rc == 0 and not found,
          f"unordered-iter does not apply outside the trace-affecting "
          f"directories (got {found})")

    rc, found = run_lint(
        args.lint, [fixtures / "workload" / "unordered_iter_violation.cc"])
    check(rc == 1, "workload unordered_iter fixture exits 1")
    check([f[2] for f in found] == ["unordered-iter"],
          f"workload/ is in unordered-iter scope (generators promise a "
          f"bit-identical stream per seed), vector loop not flagged "
          f"(got {found})")

    rc, found = run_lint(args.lint, [fixtures / "common" / "sync.h"])
    check(rc == 0 and not found,
          f"common/sync.h is exempt from raw-sync (got {found})")

    rc, found = run_lint(args.lint,
                         [fixtures / "mempool" / "raw_sync_violation.cc"])
    check(rc == 1, "mempool raw_sync fixture exits 1")
    check([f[2] for f in found] == ["raw-sync"] * 3,
          f"raw-sync applies in mempool/: include + member + lock_guard "
          f"(got {found})")

    rc, found = run_lint(
        args.lint, [fixtures / "mempool" / "unordered_iter_violation.cc"])
    check(rc == 1, "mempool unordered_iter fixture exits 1")
    check([f[2] for f in found] == ["unordered-iter"],
          f"mempool/ is in unordered-iter scope, vector loop not flagged "
          f"(got {found})")

    rc, found = run_lint(
        args.lint, [fixtures / "graph" / "unordered_iter_violation.cc"])
    check(rc == 1, "graph unordered_iter fixture exits 1")
    check([f[2] for f in found] == ["unordered-iter"],
          f"graph/ is in unordered-iter scope, vector loop not flagged "
          f"(got {found})")

    rc, found = run_lint(args.lint, [fixtures / "chain" / "flat_map_ok.cc"])
    check(rc == 0 and not found,
          f"chain/ FlatMap iteration (insertion order) lints clean "
          f"(got {found})")

    print("whole fixture tree:")
    rc, found = run_lint(args.lint, [fixtures])
    check(rc == 1, "fixture tree exits 1")
    by_rule = {}
    for f in found:
        by_rule[f[2]] = by_rule.get(f[2], 0) + 1
    check(by_rule == {"raw-sync": 8, "raw-thread": 1, "wall-clock": 4,
                      "unordered-iter": 5},
          f"aggregate finding counts per rule (got {by_rule})")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Lint fixture: workload/ is a trace-affecting path — generators and
// scenario overlays promise a bit-identical stream per seed, so hash-order
// iteration there silently breaks gauntlet snapshots and record/replay.
// Expected findings: one unordered-iter on the histogram range-for; the
// vector loop below it stays unflagged.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace txallo::workload {

inline uint64_t SumDegrees(
    const std::unordered_map<uint64_t, uint64_t>& degree_by_account,
    const std::vector<uint64_t>& ordered_accounts) {
  uint64_t total = 0;
  for (const auto& entry : degree_by_account) {
    total += entry.second;
  }
  for (uint64_t account : ordered_accounts) {
    total += account;
  }
  return total;
}

}  // namespace txallo::workload

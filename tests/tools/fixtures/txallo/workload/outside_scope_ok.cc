// Lint fixture: unordered-iter applies only to trace-affecting paths
// (engine/, allocator/). This file sits in workload/, so its hash-order
// range-for is allowed; the raw-sync/raw-thread/wall-clock rules still
// apply tree-wide, so the steady_clock use stays unflagged and there are
// no other tokens. Expected findings: none.
#include <cstdint>
#include <unordered_map>

namespace txallo::workload {

inline uint64_t HistogramMass(
    const std::unordered_map<uint64_t, uint64_t>& histogram) {
  uint64_t total = 0;
  for (const auto& entry : histogram) {
    total += entry.second;
  }
  return total;
}

}  // namespace txallo::workload

// Lint fixture: txallo/chain/ is in unordered-iter scope (the account
// registry assigns ids in first-seen order), but iteration over
// common::FlatMap is deterministic (insertion order) and must lint
// clean — the declaration heuristic keys on `unordered_`, not on every
// associative container.
#include <cstdint>
#include <string>
#include <vector>

namespace txallo::common {
template <typename K, typename V>
struct FlatMap {
  struct Entry {
    K first;
    V second;
  };
  std::vector<Entry> entries;
  auto begin() const { return entries.begin(); }
  auto end() const { return entries.end(); }
};
}  // namespace txallo::common

namespace txallo::chain {

struct RegistryScan {
  common::FlatMap<std::string, uint64_t> index;

  uint64_t Sum() const {
    uint64_t total = 0;
    for (const auto& entry : index) {
      total += entry.second;
    }
    return total;
  }
};

}  // namespace txallo::chain

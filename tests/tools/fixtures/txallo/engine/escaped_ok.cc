// Lint fixture: every violation carries a txallo-lint escape, so the file
// must lint clean. Exercises same-line escapes, standalone previous-line
// escapes, multi-rule escapes and justification text after the rule list.
#include <thread>  // txallo-lint: allow(raw-thread) fixture worker pool

namespace txallo::engine {

struct EscapedLane {
  // txallo-lint: allow(raw-thread)
  std::thread worker;
};

inline double EscapedNow() {
  // txallo-lint: allow(wall-clock) fixture exercises the escape parser
  const auto wall = std::chrono::system_clock::now();
  return static_cast<double>(wall.time_since_epoch().count());
}

inline void EscapedBoth() {
  std::mutex mu;  // txallo-lint: allow(raw-sync,raw-thread) both rules named
  (void)mu;
}

}  // namespace txallo::engine

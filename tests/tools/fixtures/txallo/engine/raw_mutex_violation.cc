// Lint fixture: raw std synchronization primitives in an engine path.
// Expected findings: raw-sync on the include, both declarations and the
// lock_guard line (4); raw-thread on the thread member. Never compiled —
// parsed by determinism_lint_test.py only.
#include <mutex>

namespace txallo::engine {

struct BadLane {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
};

void BadLock(BadLane& lane) {
  std::lock_guard<std::mutex> lock(lane.mu);
}

}  // namespace txallo::engine

// Lint fixture: nondeterministic hash-order iteration in a trace-affecting
// path. Expected findings: unordered-iter on the two range-fors over the
// unordered members (declared and inline) — none on the vector loop and
// none on the sorted-copy loop.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace txallo::engine {

struct BadCommitFold {
  std::unordered_map<uint64_t, uint32_t> pending_moves;
  std::vector<uint64_t> ordered;

  uint64_t Sum() const {
    uint64_t total = 0;
    for (const auto& entry : pending_moves) {
      total += entry.second;
    }
    for (uint64_t v : ordered) {
      total += v;
    }
    return total;
  }

  uint64_t SumInline() const {
    uint64_t total = 0;
    for (const auto& entry : std::unordered_map<uint64_t, uint32_t>{}) {
      total += entry.second;
    }
    return total;
  }
};

}  // namespace txallo::engine

// Lint fixture: escapes must be per-rule and per-line — an allow() for the
// wrong rule, or one line above a *blank-separated* use, must not leak.
// Expected findings: raw-sync on the mutex (escape names raw-thread) and
// wall-clock on the system_clock read (the escape line is not adjacent).

namespace txallo::engine {

inline void WrongRuleEscape() {
  std::mutex mu;  // txallo-lint: allow(raw-thread) names the wrong rule
  (void)mu;
}

inline double NonAdjacentEscape() {
  // txallo-lint: allow(wall-clock) not adjacent to the use below

  const auto wall = std::chrono::system_clock::now();
  return static_cast<double>(wall.time_since_epoch().count());
}

}  // namespace txallo::engine

// Lint fixture: wall-clock and entropy reads in an engine path. Expected
// findings: wall-clock on the system_clock read, the random_device seed and
// the std::rand call — none on the steady_clock line (steady_clock is what
// common/stopwatch.h wraps and is not banned) and none inside comments or
// strings.
#include <chrono>

namespace txallo::engine {

// A comment naming std::chrono::system_clock must not be flagged.
inline double BadNow() {
  const auto wall = std::chrono::system_clock::now();
  return static_cast<double>(wall.time_since_epoch().count());
}

inline unsigned BadSeed() {
  std::random_device entropy;
  return entropy();
}

inline int BadJitter() {
  const char* label = "std::rand inside a string is fine";
  (void)label;
  return std::rand();
}

inline auto FineMonotonic() {
  return std::chrono::steady_clock::now();
}

}  // namespace txallo::engine

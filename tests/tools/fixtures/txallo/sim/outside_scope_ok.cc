// Lint fixture: unordered-iter applies only to trace-affecting paths
// (engine/, allocator/, workload/, ...). This file sits in sim/, which is
// outside that set, so its hash-order range-for is allowed; the
// raw-sync/raw-thread/wall-clock rules still apply tree-wide, so there are
// no other tokens. Expected findings: none.
#include <cstdint>
#include <unordered_map>

namespace txallo::sim {

inline uint64_t HistogramMass(
    const std::unordered_map<uint64_t, uint64_t>& histogram) {
  uint64_t total = 0;
  for (const auto& entry : histogram) {
    total += entry.second;
  }
  return total;
}

}  // namespace txallo::sim

// Lint fixture: mirrors the real txallo/common/sync.h exemption — raw std
// primitives are allowed in exactly this file (raw-sync is disabled for
// common/sync.h), while raw-thread still applies and is escaped here.
// Expected findings: none.
#pragma once

#include <mutex>
#include <thread>  // txallo-lint: allow(raw-thread) exercised by the test

namespace txallo::common {

struct FixtureMutex {
  std::mutex mu;
  std::condition_variable cv;
};

}  // namespace txallo::common

// Lint fixture: raw std synchronization in a mempool path — the real tree
// must use the annotated wrappers from common/sync.h so -Wthread-safety
// checks the admission lock discipline. Expected findings: raw-sync on the
// include, the mutex member and the lock_guard line (3). Never compiled —
// parsed by determinism_lint_test.py only.
#include <mutex>

namespace txallo::mempool {

struct BadChunk {
  std::mutex mu;
};

void BadAdmit(BadChunk& chunk) {
  std::lock_guard<std::mutex> lock(chunk.mu);
}

}  // namespace txallo::mempool

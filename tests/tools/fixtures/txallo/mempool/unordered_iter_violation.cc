// Lint fixture: hash-order iteration in a mempool path. Admission
// decisions and dispatch order are part of the recorded trace, so
// txallo/mempool/ is in unordered-iter scope alongside engine/, allocator/
// and state/. Expected findings: unordered-iter on the range-for over the
// unordered member — none on the vector loop.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace txallo::mempool {

struct BadPendingScan {
  std::unordered_map<uint64_t, uint32_t> pending_per_account;
  std::vector<uint64_t> dispatch_order;

  uint64_t Expire() const {
    uint64_t removed = 0;
    for (const auto& entry : pending_per_account) {
      removed += entry.second;
    }
    for (uint64_t seq : dispatch_order) {
      removed += seq;
    }
    return removed;
  }
};

}  // namespace txallo::mempool

// Lint fixture: hash-order iteration in a graph path. The delta-log CSR
// promises bit-identical reads across copy / refreeze, so txallo/graph/
// is in unordered-iter scope; hot paths use common::FlatMap (insertion
// order) and must not regress to hash-order. Expected findings:
// unordered-iter on the range-for over the unordered shadow-row map —
// none on the vector loop.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace txallo::graph {

struct BadOverlayFold {
  std::unordered_map<uint32_t, double> shadow_strength;
  std::vector<double> frozen_strength;

  double TotalStrength() const {
    double total = 0.0;
    for (const auto& entry : shadow_strength) {
      total += entry.second;
    }
    for (double s : frozen_strength) {
      total += s;
    }
    return total;
  }
};

}  // namespace txallo::graph

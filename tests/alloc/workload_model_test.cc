#include "txallo/alloc/workload_model.h"

#include <gtest/gtest.h>

namespace txallo::alloc {
namespace {

using chain::Transaction;

Allocation TwoShards() {
  Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  return a;
}

TEST(WorkloadModelTest, ValidateRejectsCheapCross) {
  WorkloadModel model = WorkloadModel::Uniform(2.0);
  model.cross_input = 0.5;
  EXPECT_FALSE(model.Validate().ok());
  model = WorkloadModel::Uniform(2.0);
  model.per_extra_account = -1.0;
  EXPECT_FALSE(model.Validate().ok());
}

TEST(WorkloadModelTest, UniformMatchesBaseMetrics) {
  // The extended evaluator under Uniform(η) must agree with the paper's
  // single-η evaluator on every reported number.
  Allocation a = TwoShards();
  std::vector<Transaction> txs{
      Transaction::Simple(0, 1), Transaction::Simple(0, 2),
      Transaction({2}, {2}), Transaction({0, 1}, {2, 3})};
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 3.0;
  params.capacity = 2.5;
  params.epsilon = 0.0;
  auto base = EvaluateAllocation(txs, a, params);
  auto ext = EvaluateAllocationExtended(txs, a, 2, 2.5,
                                        WorkloadModel::Uniform(3.0));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(ext.ok());
  EXPECT_DOUBLE_EQ(base->cross_shard_ratio, ext->cross_shard_ratio);
  EXPECT_DOUBLE_EQ(base->throughput, ext->throughput);
  EXPECT_DOUBLE_EQ(base->avg_latency_blocks, ext->avg_latency_blocks);
  for (uint32_t s = 0; s < 2; ++s) {
    EXPECT_DOUBLE_EQ(base->shard_workloads[s], ext->shard_workloads[s]);
  }
}

TEST(WorkloadModelTest, InputShardPaysMoreThanOutputShard) {
  // tx: input in shard 0, output in shard 1.
  Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction::Simple(0, 2)};
  WorkloadModel model{1.0, /*cross_input=*/5.0, /*cross_output=*/2.0, 0.0};
  auto report = EvaluateAllocationExtended(txs, a, 2, 100.0, model);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 5.0);
  EXPECT_DOUBLE_EQ(report->shard_workloads[1], 2.0);
}

TEST(WorkloadModelTest, ShardWithBothRolesCountsAsInput) {
  // Inputs {0}, outputs {1, 2}: shard 0 holds input 0 and output 1.
  Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction({0}, {1, 2})};
  WorkloadModel model{1.0, 4.0, 2.0, 0.0};
  auto report = EvaluateAllocationExtended(txs, a, 2, 100.0, model);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 4.0);  // Input role wins.
  EXPECT_DOUBLE_EQ(report->shard_workloads[1], 2.0);
}

TEST(WorkloadModelTest, PerExtraAccountSurcharge) {
  Allocation a = TwoShards();
  // 4 distinct accounts, intra would be impossible; make it intra-shard:
  Allocation same(4, 2);
  for (chain::AccountId id = 0; id < 4; ++id) same.Assign(id, 0);
  std::vector<Transaction> txs{Transaction({0, 1}, {2, 3})};
  WorkloadModel model{1.0, 2.0, 2.0, /*per_extra_account=*/0.5};
  auto report = EvaluateAllocationExtended(txs, same, 2, 100.0, model);
  ASSERT_TRUE(report.ok());
  // Intra 1 + surcharge 2 extra accounts * 0.5 = 2.0.
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 2.0);
}

TEST(WorkloadModelTest, SurchargeAppliesPerInvolvedShard) {
  Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction({0, 1}, {2, 3})};
  WorkloadModel model{1.0, 2.0, 2.0, /*per_extra_account=*/1.0};
  auto report = EvaluateAllocationExtended(txs, a, 2, 100.0, model);
  ASSERT_TRUE(report.ok());
  // Shard 0: input role 2 + surcharge 2; shard 1: output role 2 + 2.
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 4.0);
  EXPECT_DOUBLE_EQ(report->shard_workloads[1], 4.0);
}

TEST(WorkloadModelTest, ThroughputCreditUnchangedByRoles) {
  // Role asymmetry changes σ but never the 1/µ completion credit.
  Allocation a = TwoShards();
  std::vector<Transaction> txs{Transaction::Simple(0, 2),
                               Transaction::Simple(1, 3)};
  WorkloadModel skew{1.0, 10.0, 2.0, 0.0};
  auto report = EvaluateAllocationExtended(txs, a, 2, 1000.0, skew);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->throughput, 2.0);
}

TEST(WorkloadModelTest, UnassignedAccountFails) {
  Allocation partial(3, 2);
  partial.Assign(0, 0);
  std::vector<Transaction> txs{Transaction::Simple(0, 2)};
  auto report = EvaluateAllocationExtended(txs, partial, 2, 10.0,
                                           WorkloadModel::Uniform(2.0));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace txallo::alloc

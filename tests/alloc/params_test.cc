#include "txallo/alloc/params.h"

#include <gtest/gtest.h>

namespace txallo::alloc {
namespace {

TEST(ParamsTest, ForExperimentUsesPaperSetting) {
  // λ = |T| / k and ε = 1e-5 |T| (paper §VI-B1).
  AllocationParams p = AllocationParams::ForExperiment(1'000'000, 20, 4.0);
  EXPECT_EQ(p.num_shards, 20u);
  EXPECT_DOUBLE_EQ(p.eta, 4.0);
  EXPECT_DOUBLE_EQ(p.capacity, 50'000.0);
  EXPECT_DOUBLE_EQ(p.epsilon, 10.0);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ParamsTest, ValidateRejectsZeroShards) {
  AllocationParams p = AllocationParams::ForExperiment(100, 1, 2.0);
  p.num_shards = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ParamsTest, ValidateRejectsEtaBelowOne) {
  AllocationParams p = AllocationParams::ForExperiment(100, 2, 2.0);
  p.eta = 0.5;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ParamsTest, ValidateRejectsNonPositiveCapacity) {
  AllocationParams p = AllocationParams::ForExperiment(100, 2, 2.0);
  p.capacity = 0.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ParamsTest, ValidateRejectsNegativeEpsilon) {
  AllocationParams p = AllocationParams::ForExperiment(100, 2, 2.0);
  p.epsilon = -1.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ParamsTest, EtaEqualOneIsAllowed) {
  // η = 1 degenerates σ to the degree sum (paper §VI-B4 discussion).
  AllocationParams p = AllocationParams::ForExperiment(100, 2, 1.0);
  EXPECT_TRUE(p.Validate().ok());
}

}  // namespace
}  // namespace txallo::alloc

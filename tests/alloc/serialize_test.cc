#include "txallo/alloc/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace txallo::alloc {
namespace {

TEST(SerializeTest, RoundTripPreservesMapping) {
  chain::AccountRegistry registry;
  for (int i = 0; i < 50; ++i) registry.CreateSynthetic();
  Allocation original(50, 4);
  for (chain::AccountId a = 0; a < 50; ++a) original.Assign(a, a % 4);

  const std::string path = ::testing::TempDir() + "/txallo_alloc.csv";
  ASSERT_TRUE(SaveAllocationCsv(original, registry, path).ok());
  auto loaded = LoadAllocationCsv(&registry, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(original == loaded.value());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadIntoFreshRegistryInternsAddresses) {
  chain::AccountRegistry writer_registry;
  for (int i = 0; i < 10; ++i) writer_registry.CreateSynthetic();
  Allocation original(10, 2);
  for (chain::AccountId a = 0; a < 10; ++a) original.Assign(a, a % 2);
  const std::string path = ::testing::TempDir() + "/txallo_alloc2.csv";
  ASSERT_TRUE(SaveAllocationCsv(original, writer_registry, path).ok());

  chain::AccountRegistry reader_registry;  // Empty: ids re-derived.
  auto loaded = LoadAllocationCsv(&reader_registry, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(reader_registry.size(), 10u);
  for (chain::AccountId a = 0; a < 10; ++a) {
    // Addresses were interned in file order = id order here.
    EXPECT_EQ(loaded->shard_of(a), original.shard_of(a));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, SparseMappingsSkipUnassigned) {
  chain::AccountRegistry registry;
  for (int i = 0; i < 5; ++i) registry.CreateSynthetic();
  Allocation sparse(5, 2);
  sparse.Assign(1, 0);
  sparse.Assign(3, 1);
  const std::string path = ::testing::TempDir() + "/txallo_sparse.csv";
  ASSERT_TRUE(SaveAllocationCsv(sparse, registry, path).ok());
  auto loaded = LoadAllocationCsv(&registry, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shard_of(1), 0u);
  EXPECT_EQ(loaded->shard_of(3), 1u);
  EXPECT_FALSE(loaded->IsAssigned(0));
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMissingMetadata) {
  const std::string path = ::testing::TempDir() + "/txallo_noheader.csv";
  {
    std::ofstream out(path);
    out << "account,shard\nacct-0,1\n";
  }
  chain::AccountRegistry registry;
  auto loaded = LoadAllocationCsv(&registry, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsOutOfRangeShard) {
  const std::string path = ::testing::TempDir() + "/txallo_badshard.csv";
  {
    std::ofstream out(path);
    out << "#txallo-allocation,2,1\naccount,shard\nacct-0,7\n";
  }
  chain::AccountRegistry registry;
  auto loaded = LoadAllocationCsv(&registry, path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsRegistrySmallerThanAllocation) {
  chain::AccountRegistry registry;
  registry.CreateSynthetic();
  Allocation too_big(5, 2);
  Status st = SaveAllocationCsv(too_big, registry, "/tmp/never-written.csv");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace txallo::alloc

#include "txallo/alloc/graph_metrics.h"

#include <gtest/gtest.h>

#include "txallo/graph/builder.h"

namespace txallo::alloc {
namespace {

using chain::Transaction;
using graph::TransactionGraph;

AllocationParams AmpleParams(uint32_t k, double eta) {
  AllocationParams p;
  p.num_shards = k;
  p.eta = eta;
  p.capacity = 1e9;
  p.epsilon = 0.0;
  return p;
}

TEST(CommunityStateTest, IntraEdgeCountsOnce) {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.Consolidate();
  Allocation a(2, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  CommunityState state = ComputeCommunityState(g, a, AmpleParams(2, 3.0));
  EXPECT_DOUBLE_EQ(state.sigma[0], 2.0);
  EXPECT_DOUBLE_EQ(state.lambda_hat[0], 2.0);
  EXPECT_DOUBLE_EQ(state.sigma[1], 0.0);
}

TEST(CommunityStateTest, CrossEdgeCountsEtaBothSidesHalfThroughput) {
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.Consolidate();
  Allocation a(2, 2);
  a.Assign(0, 0);
  a.Assign(1, 1);
  CommunityState state = ComputeCommunityState(g, a, AmpleParams(2, 3.0));
  EXPECT_DOUBLE_EQ(state.sigma[0], 6.0);  // η w (Eq. 5).
  EXPECT_DOUBLE_EQ(state.sigma[1], 6.0);
  EXPECT_DOUBLE_EQ(state.lambda_hat[0], 1.0);  // w/2 (§III-C).
  EXPECT_DOUBLE_EQ(state.lambda_hat[1], 1.0);
}

TEST(CommunityStateTest, SelfLoopIsIntra) {
  TransactionGraph g;
  g.AddSelfLoop(0, 4.0);
  g.Consolidate();
  Allocation a(1, 2);
  a.Assign(0, 1);
  CommunityState state = ComputeCommunityState(g, a, AmpleParams(2, 5.0));
  EXPECT_DOUBLE_EQ(state.sigma[1], 4.0);
  EXPECT_DOUBLE_EQ(state.lambda_hat[1], 4.0);
}

TEST(CommunityStateTest, UnassignedNeighborCountsAsCross) {
  // Algorithm 1's initialization treats not-yet-absorbed nodes as "other".
  TransactionGraph g;
  g.AddEdge(0, 1, 2.0);
  g.Consolidate();
  Allocation a(2, 2);
  a.Assign(0, 0);  // Node 1 unassigned.
  CommunityState state = ComputeCommunityState(g, a, AmpleParams(2, 3.0));
  EXPECT_DOUBLE_EQ(state.sigma[0], 6.0);
  EXPECT_DOUBLE_EQ(state.lambda_hat[0], 1.0);
  EXPECT_DOUBLE_EQ(state.sigma[1], 0.0);
}

TEST(CommunityStateTest, ThroughputClampsAtCapacity) {
  TransactionGraph g;
  g.AddEdge(0, 1, 10.0);
  g.Consolidate();
  Allocation a(2, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  AllocationParams params = AmpleParams(2, 2.0);
  params.capacity = 5.0;  // σ = 10 > λ = 5.
  CommunityState state = ComputeCommunityState(g, a, params);
  EXPECT_DOUBLE_EQ(state.ThroughputOf(0), 5.0);  // (λ/σ)Λ̂ = 0.5*10.
  EXPECT_DOUBLE_EQ(state.TotalThroughput(), 5.0);
}

TEST(CommunityStateTest, AllIntraThroughputEqualsTransactionCount) {
  // If every tx is intra-shard, Σ Λ̂ equals |T| (weight conservation).
  chain::Ledger ledger;
  std::vector<Transaction> txs{
      Transaction::Simple(0, 1), Transaction::Simple(1, 2),
      Transaction({3}, {3}), Transaction({0, 1}, {2})};
  ASSERT_TRUE(ledger.Append(chain::Block(0, std::move(txs))).ok());
  TransactionGraph g = graph::BuildTransactionGraph(ledger);
  Allocation a(4, 2);
  for (chain::AccountId id = 0; id < 4; ++id) a.Assign(id, 0);
  CommunityState state = ComputeCommunityState(g, a, AmpleParams(2, 2.0));
  EXPECT_NEAR(state.TotalThroughput(), 4.0, 1e-12);
  EXPECT_NEAR(state.sigma[0], 4.0, 1e-12);
}

TEST(GraphCrossWeightRatioTest, Extremes) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  g.Consolidate();
  Allocation together(4, 2);
  for (chain::AccountId id = 0; id < 4; ++id) together.Assign(id, 0);
  EXPECT_DOUBLE_EQ(GraphCrossWeightRatio(g, together), 0.0);

  Allocation split(4, 2);
  split.Assign(0, 0);
  split.Assign(1, 1);
  split.Assign(2, 0);
  split.Assign(3, 1);
  EXPECT_DOUBLE_EQ(GraphCrossWeightRatio(g, split), 1.0);
}

TEST(GraphCrossWeightRatioTest, SelfLoopsAreIntraInDenominator) {
  TransactionGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddSelfLoop(0, 1.0);
  g.Consolidate();
  Allocation split(2, 2);
  split.Assign(0, 0);
  split.Assign(1, 1);
  EXPECT_DOUBLE_EQ(GraphCrossWeightRatio(g, split), 0.5);
}

}  // namespace
}  // namespace txallo::alloc

#include "txallo/alloc/metrics.h"

#include <gtest/gtest.h>

namespace txallo::alloc {
namespace {

using chain::Transaction;

// Two shards; accounts 0,1 -> shard 0; accounts 2,3 -> shard 1.
Allocation TwoShardAllocation() {
  Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  return a;
}

TEST(ShardsTouchedTest, IntraAndCross) {
  Allocation a = TwoShardAllocation();
  EXPECT_EQ(ShardsTouched(Transaction::Simple(0, 1), a), 1u);
  EXPECT_EQ(ShardsTouched(Transaction::Simple(0, 2), a), 2u);
  EXPECT_EQ(ShardsTouched(Transaction({0, 1}, {2, 3}), a), 2u);
  EXPECT_EQ(ShardsTouched(Transaction({0}, {0}), a), 1u);
}

TEST(ShardsTouchedTest, ManyDistinctShardsBeyondSmallBuffer) {
  // The fast path uses a 16-entry stack buffer; a transaction spanning 20
  // distinct shards must still report µ = 20.
  Allocation a(20, 20);
  std::vector<chain::AccountId> ids;
  for (chain::AccountId id = 0; id < 20; ++id) {
    a.Assign(id, id);
    ids.push_back(id);
  }
  Transaction wide(ids, {ids[0]});
  EXPECT_EQ(ShardsTouched(wide, a), 20u);
}

TEST(ShardsTouchedTest, UnassignedAccountIsZero) {
  Allocation a(3, 2);
  a.Assign(0, 0);
  EXPECT_EQ(ShardsTouched(Transaction::Simple(0, 2), a), 0u);
}

TEST(EvaluateTest, AllIntraPerfectSplit) {
  Allocation a = TwoShardAllocation();
  std::vector<Transaction> txs{
      Transaction::Simple(0, 1), Transaction::Simple(0, 1),
      Transaction::Simple(2, 3), Transaction::Simple(2, 3)};
  AllocationParams params = AllocationParams::ForExperiment(4, 2, 2.0);
  auto report = EvaluateAllocation(txs, a, params);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->cross_shard_ratio, 0.0);
  EXPECT_DOUBLE_EQ(report->workload_stddev, 0.0);
  // Ideal case: Λ = |T|, normalized Λ/λ = k.
  EXPECT_DOUBLE_EQ(report->throughput, 4.0);
  EXPECT_DOUBLE_EQ(report->normalized_throughput, 2.0);
  EXPECT_DOUBLE_EQ(report->avg_latency_blocks, 1.0);
  EXPECT_DOUBLE_EQ(report->worst_latency_blocks, 1.0);
  EXPECT_DOUBLE_EQ(report->mean_shards_per_tx, 1.0);
}

TEST(EvaluateTest, CrossShardWorkloadUsesEta) {
  Allocation a = TwoShardAllocation();
  std::vector<Transaction> txs{Transaction::Simple(0, 2)};
  AllocationParams params = AllocationParams::ForExperiment(1, 2, 3.0);
  auto report = EvaluateAllocation(txs, a, params);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->cross_shard_ratio, 1.0);
  // Each involved shard carries η = 3 workload.
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 3.0);
  EXPECT_DOUBLE_EQ(report->shard_workloads[1], 3.0);
  EXPECT_EQ(report->cross_shard_transactions, 1u);
  EXPECT_DOUBLE_EQ(report->mean_shards_per_tx, 2.0);
}

TEST(EvaluateTest, CrossShardThroughputSplitsCredit) {
  // One cross-shard tx, capacity ample: each shard counts 1/µ so the system
  // counts the transaction exactly once (Eq. for Λ̂_i).
  Allocation a = TwoShardAllocation();
  std::vector<Transaction> txs{Transaction::Simple(0, 2),
                               Transaction::Simple(0, 1)};
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 2.0;
  params.capacity = 100.0;  // Ample.
  params.epsilon = 0.0;
  auto report = EvaluateAllocation(txs, a, params);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->throughput, 2.0);
}

TEST(EvaluateTest, OverloadedShardClampsThroughput) {
  // 10 intra txs in shard 0, capacity 5: only half complete (Eq. 3).
  Allocation a = TwoShardAllocation();
  std::vector<Transaction> txs;
  for (int i = 0; i < 10; ++i) txs.push_back(Transaction::Simple(0, 1));
  AllocationParams params;
  params.num_shards = 2;
  params.eta = 2.0;
  params.capacity = 5.0;
  params.epsilon = 0.0;
  auto report = EvaluateAllocation(txs, a, params);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->throughput, 5.0);
  EXPECT_DOUBLE_EQ(report->shard_workloads[0], 10.0);
  EXPECT_DOUBLE_EQ(report->normalized_workloads[0], 2.0);
  // σ̂ = 2 -> ζ = 1.5 for shard 0; shard 1 empty -> 1.0.
  EXPECT_NEAR(report->avg_latency_blocks, (1.5 + 1.0) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(report->worst_latency_blocks, 2.0);
}

TEST(EvaluateTest, UnassignedAccountFailsPrecondition) {
  Allocation a(4, 2);
  a.Assign(0, 0);
  std::vector<Transaction> txs{Transaction::Simple(0, 1)};
  AllocationParams params = AllocationParams::ForExperiment(1, 2, 2.0);
  auto report = EvaluateAllocation(txs, a, params);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EvaluateTest, LedgerOverloadMatchesVectorOverload) {
  Allocation a = TwoShardAllocation();
  std::vector<Transaction> txs{Transaction::Simple(0, 1),
                               Transaction::Simple(2, 3),
                               Transaction::Simple(1, 2)};
  chain::Ledger ledger;
  ASSERT_TRUE(ledger.Append(chain::Block(0, txs)).ok());
  AllocationParams params = AllocationParams::ForExperiment(3, 2, 2.0);
  auto from_vec = EvaluateAllocation(txs, a, params);
  auto from_ledger = EvaluateAllocation(ledger, a, params);
  ASSERT_TRUE(from_vec.ok());
  ASSERT_TRUE(from_ledger.ok());
  EXPECT_DOUBLE_EQ(from_vec->throughput, from_ledger->throughput);
  EXPECT_DOUBLE_EQ(from_vec->cross_shard_ratio,
                   from_ledger->cross_shard_ratio);
}

TEST(EvaluateTest, WorkloadBalanceMetric) {
  // Shard 0: two intra (σ=2); shard 1: none (σ=0) -> ρ = 1.
  Allocation a = TwoShardAllocation();
  std::vector<Transaction> txs{Transaction::Simple(0, 1),
                               Transaction::Simple(0, 1)};
  AllocationParams params = AllocationParams::ForExperiment(2, 2, 2.0);
  auto report = EvaluateAllocation(txs, a, params);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->workload_stddev, 1.0);
  EXPECT_DOUBLE_EQ(report->normalized_workload_stddev, 1.0);
}

}  // namespace
}  // namespace txallo::alloc

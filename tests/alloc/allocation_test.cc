#include "txallo/alloc/allocation.h"

#include <gtest/gtest.h>

namespace txallo::alloc {
namespace {

TEST(AllocationTest, StartsUnassigned) {
  Allocation a(5, 3);
  EXPECT_EQ(a.num_accounts(), 5u);
  EXPECT_EQ(a.num_shards(), 3u);
  for (chain::AccountId id = 0; id < 5; ++id) {
    EXPECT_FALSE(a.IsAssigned(id));
    EXPECT_EQ(a.shard_of(id), kUnassignedShard);
  }
}

TEST(AllocationTest, AssignAndReassign) {
  Allocation a(3, 2);
  a.Assign(0, 1);
  EXPECT_TRUE(a.IsAssigned(0));
  EXPECT_EQ(a.shard_of(0), 1u);
  a.Assign(0, 0);
  EXPECT_EQ(a.shard_of(0), 0u);
}

TEST(AllocationTest, ValidateRejectsUnassigned) {
  Allocation a(2, 2);
  a.Assign(0, 0);
  EXPECT_FALSE(a.Validate().ok());
  a.Assign(1, 1);
  EXPECT_TRUE(a.Validate().ok());
}

TEST(AllocationTest, ValidateRejectsOutOfRangeShard) {
  Allocation a(1, 2);
  a.Assign(0, 7);
  Status st = a.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(AllocationTest, GroupsPartitionAccounts) {
  Allocation a(6, 3);
  for (chain::AccountId id = 0; id < 6; ++id) a.Assign(id, id % 3);
  auto groups = a.Groups();
  ASSERT_EQ(groups.size(), 3u);
  // Definition 1: uniqueness + completeness.
  size_t total = 0;
  std::vector<bool> seen(6, false);
  for (const auto& group : groups) {
    total += group.size();
    for (chain::AccountId id : group) {
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
  EXPECT_EQ(total, 6u);
}

TEST(AllocationTest, ShardSizes) {
  Allocation a(5, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 0);
  a.Assign(3, 1);
  a.Assign(4, 1);
  auto sizes = a.ShardSizes();
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 2u);
}

TEST(AllocationTest, GrowAccountsPreservesAndExtends) {
  Allocation a(2, 2);
  a.Assign(0, 1);
  a.GrowAccounts(4);
  EXPECT_EQ(a.num_accounts(), 4u);
  EXPECT_EQ(a.shard_of(0), 1u);
  EXPECT_FALSE(a.IsAssigned(3));
  a.GrowAccounts(1);  // Shrinking is a no-op.
  EXPECT_EQ(a.num_accounts(), 4u);
}

TEST(AllocationTest, EqualityComparesMapping) {
  Allocation a(2, 2), b(2, 2);
  a.Assign(0, 0);
  a.Assign(1, 1);
  b.Assign(0, 0);
  b.Assign(1, 1);
  EXPECT_TRUE(a == b);
  b.Assign(1, 0);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace txallo::alloc

// Engine <-> state-backend wiring: real transfers debit/credit account
// records, a failed balance check aborts the transaction through 2PC (and
// demonstrably reverts its staged effects), allocation installs migrate
// records and charge the move count, and each tick fingerprints committed
// state into the trace.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "txallo/alloc/allocation.h"
#include "txallo/chain/transaction.h"
#include "txallo/engine/engine.h"
#include "txallo/state/state_db.h"
#include "txallo/state/transfer_plan.h"

namespace txallo::engine {
namespace {

std::shared_ptr<alloc::Allocation> MakeAllocation(
    size_t accounts, uint32_t shards,
    const std::vector<alloc::ShardId>& assignment) {
  auto a = std::make_shared<alloc::Allocation>(accounts, shards);
  for (size_t i = 0; i < assignment.size(); ++i) {
    a->Assign(static_cast<chain::AccountId>(i), assignment[i]);
  }
  return a;
}

EngineConfig StateConfigured(uint32_t shards, uint32_t threads,
                             int64_t funding) {
  EngineConfig config;
  config.num_shards = shards;
  config.num_threads = threads;
  config.work.eta = 2.0;
  config.work.capacity_per_block = 100.0;
  config.work.cross_shard_commit_rounds = 1;
  config.state.enabled = true;
  config.state.initial_balance = funding;
  config.state.migration_work_per_account = 1.0;
  return config;
}

// Hand-verifiable scenario (funding = 1): the ingest sequence tags fix the
// transfer amounts (TransferAmount(seq) = 1 + seq % 7), so
//   tx0 = {0 -> 1} at seq 0 moves 1 unit: within the balance, commits;
//   tx1 = {2 -> 3} at seq 1 moves 2 units: overdraws, aborts.
// Both are cross-shard under the 0,2->shard0 / 1,3->shard1 mapping, so the
// abort exercises the multi-participant vote path.
TEST(EngineStateTest, InsufficientBalanceAbortsAndRevertsThroughTwoPhase) {
  ASSERT_EQ(state::TransferAmount(0), 1);
  ASSERT_EQ(state::TransferAmount(1), 2);
  auto alloc = MakeAllocation(4, 2, {0, 1, 0, 1});
  ParallelEngine engine(StateConfigured(2, 2, /*funding=*/1), alloc);
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1),
                                      chain::Transaction::Simple(2, 3)};
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport report = engine.DrainAndReport();

  EXPECT_EQ(report.sim.submitted, 2u);
  EXPECT_EQ(report.sim.cross_shard_submitted, 2u);
  EXPECT_EQ(report.sim.committed, 1u);
  EXPECT_EQ(report.aborted, 1u);
  EXPECT_EQ(report.cross_shard_aborted, 1u);

  state::StateDb* db = engine.state();
  ASSERT_NE(db, nullptr);
  // tx0 committed: payer drained, payee credited, payer nonce bumped.
  EXPECT_EQ(*db->Find(0), (state::AccountState{0, 1}));
  EXPECT_EQ(*db->Find(1), (state::AccountState{2, 0}));
  // tx1 aborted: both records reverted to the freshly-funded state (lazy
  // creation is a committed-state change and survives the abort).
  EXPECT_EQ(*db->Find(2), (state::AccountState{1, 0}));
  EXPECT_EQ(*db->Find(3), (state::AccountState{1, 0}));
  for (uint32_t s = 0; s < 2; ++s) {
    EXPECT_EQ(db->shard(s).pending_transactions(), 0u) << "shard " << s;
  }

  // Structural check: the engine's fingerprint equals a StateDb built by
  // hand with exactly the expected records on the expected shards.
  state::StateDb expected(2, engine.config().state);
  expected.Fund(0, {0, 1}, 0);
  expected.Fund(2, {1, 0}, 0);
  expected.Fund(1, {2, 0}, 1);
  expected.Fund(3, {1, 0}, 1);
  EXPECT_EQ(db->GlobalRoot(), expected.GlobalRoot());
}

TEST(EngineStateTest, InstallMigratesRecordsAndChargesTheMoveCount) {
  auto alloc = MakeAllocation(4, 2, {0, 1, 0, 1});
  ParallelEngine engine(StateConfigured(2, 2, /*funding=*/100), alloc);
  // One committed block lazily creates all four records in place.
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1),
                                      chain::Transaction::Simple(2, 3)};
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport before = engine.DrainAndReport();
  EXPECT_EQ(before.sim.committed, 2u);
  EXPECT_EQ(before.accounts_migrated, 0u);

  // Swap every account's shard; the install's real cost is 4 record moves.
  ASSERT_TRUE(
      engine.InstallAllocation(MakeAllocation(4, 2, {1, 0, 1, 0})).ok());
  engine.Tick();
  EngineReport after = engine.Snapshot();
  EXPECT_EQ(after.reallocations, 1u);
  EXPECT_EQ(after.accounts_migrated, 4u);
  state::StateDb* db = engine.state();
  EXPECT_EQ(db->ResidencyOf(0), 1u);
  EXPECT_EQ(db->ResidencyOf(1), 0u);
  EXPECT_EQ(db->ResidencyOf(2), 1u);
  EXPECT_EQ(db->ResidencyOf(3), 0u);
  // Records arrive intact: balances unchanged by the move.
  EXPECT_EQ(db->Find(0)->balance, 100 - 1);
  EXPECT_EQ(db->Find(1)->balance, 100 + 1);
}

TEST(EngineStateTest, TraceRecordsOneStateRootPerTick) {
  auto alloc = MakeAllocation(4, 2, {0, 1, 0, 1});
  ParallelEngine engine(StateConfigured(2, 1, /*funding=*/100), alloc);
  engine.EnableTraceRecording();
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1)};
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  engine.Tick();
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  engine.Tick();
  engine.DrainAndReport();

  ParallelEngine::Trace trace = engine.ExtractTrace();
  ASSERT_GE(trace.state_roots.size(), 2u);
  for (size_t i = 1; i < trace.state_roots.size(); ++i) {
    EXPECT_LT(trace.state_roots[i - 1].block, trace.state_roots[i].block);
  }
  // The last per-tick root is the live fingerprint.
  EXPECT_EQ(trace.state_roots.back().root, engine.state()->GlobalRoot());
  // State changed between the ticks, and the roots show it.
  EXPECT_NE(trace.state_roots.front().root, trace.state_roots.back().root);
}

// With the backend off the engine is the pure cost model: no aborts, no
// migration charge, no roots, and no StateDb at all.
TEST(EngineStateTest, DisabledBackendKeepsThePureCostModel) {
  auto alloc = MakeAllocation(4, 2, {0, 1, 0, 1});
  EngineConfig config = StateConfigured(2, 1, /*funding=*/1);
  config.state.enabled = false;
  ParallelEngine engine(config, alloc);
  engine.EnableTraceRecording();
  EXPECT_EQ(engine.state(), nullptr);
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(2, 3)};
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.committed, 1u);  // Would abort with state on.
  EXPECT_EQ(report.aborted, 0u);
  EXPECT_EQ(report.accounts_migrated, 0u);
  EXPECT_TRUE(engine.ExtractTrace().state_roots.empty());
}

}  // namespace
}  // namespace txallo::engine

// DescribeLaneDivergence: the per-shard-lane side-by-side trace diff.
// Hand-built ReplayLogs pin down the exact reporting contract — which lane
// is blamed, the first divergent position, the +/-context window, and the
// "(--, --)" placeholder past the shorter stream's end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "txallo/engine/replay.h"

namespace txallo::engine {
namespace {

PrepareEvent Prep(uint64_t block, uint32_t shard, uint64_t seq) {
  PrepareEvent event;
  event.block = block;
  event.shard = shard;
  event.seq = seq;
  return event;
}

// Two shards, interleaved in canonical (block, shard, position) order.
// Shard 0 executes seqs 0,2,4,...; shard 1 executes 1,3,5,...
ReplayLog TwoLaneLog(size_t per_lane) {
  ReplayLog log;
  log.meta.num_shards = 2;
  for (uint64_t block = 0; block < per_lane; ++block) {
    log.prepares.push_back(Prep(block, 0, 2 * block));
    log.prepares.push_back(Prep(block, 1, 2 * block + 1));
  }
  return log;
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(TraceDiffTest, IdenticalLogsProduceAnEmptyDiff) {
  const ReplayLog log = TwoLaneLog(6);
  EXPECT_EQ(DescribeLaneDivergence(log, log), "");
  EXPECT_EQ(DescribeLaneDivergence(ReplayLog{}, ReplayLog{}), "");
}

TEST(TraceDiffTest, BlamesTheDivergentLaneAndPosition) {
  const ReplayLog recorded = TwoLaneLog(8);
  ReplayLog replayed = recorded;
  // Swap shard 1's entries at lane positions 4 and 5 (global stream
  // indices 9 and 11): a classic reordering divergence.
  std::swap(replayed.prepares[9].seq, replayed.prepares[11].seq);

  const std::string diff = DescribeLaneDivergence(recorded, replayed);
  EXPECT_NE(diff.find("lane shard=1: first divergence at pos 4"),
            std::string::npos)
      << diff;
  EXPECT_NE(diff.find("(recorded tick 4, replayed tick 4)"),
            std::string::npos)
      << diff;
  // Shard 0 matched entry for entry: it must not be reported.
  EXPECT_EQ(diff.find("lane shard=0"), std::string::npos) << diff;
  // Divergent rows carry the marker; the swapped seqs are both visible.
  EXPECT_NE(diff.find("    > 4"), std::string::npos) << diff;
  EXPECT_NE(diff.find("(4, 9)"), std::string::npos) << diff;
  EXPECT_NE(diff.find("(4, 11)"), std::string::npos) << diff;
  // Header + context window: pos 1..7 (3 before, divergence, 3 after).
  // 1 summary + 1 column header + 7 rows.
  EXPECT_EQ(CountLines(diff), 9u) << diff;
}

TEST(TraceDiffTest, ContextWindowClampsAtTheLaneEdges) {
  const ReplayLog recorded = TwoLaneLog(4);
  ReplayLog replayed = recorded;
  replayed.prepares[0].seq = 99;  // Shard 0, lane position 0.

  const std::string diff = DescribeLaneDivergence(recorded, replayed);
  EXPECT_NE(diff.find("lane shard=0: first divergence at pos 0"),
            std::string::npos)
      << diff;
  // No positions before 0 exist: 1 summary + 1 header + rows 0..3.
  EXPECT_EQ(CountLines(diff), 6u) << diff;
  // Wider context than the lane: still clamped, no phantom rows.
  EXPECT_EQ(CountLines(DescribeLaneDivergence(recorded, replayed,
                                              /*context=*/100)),
            6u);
}

TEST(TraceDiffTest, LengthMismatchShowsPlaceholderRows) {
  const ReplayLog recorded = TwoLaneLog(5);
  ReplayLog replayed = recorded;
  // Drop shard 1's last entry (global index 9): the replayed lane is
  // shorter, and the diff must show the missing tail as "(--, --)".
  replayed.prepares.pop_back();

  const std::string diff = DescribeLaneDivergence(recorded, replayed);
  EXPECT_NE(diff.find("lane shard=1: first divergence at pos 4"),
            std::string::npos)
      << diff;
  EXPECT_NE(diff.find("(recorded tick 4, replayed tick --)"),
            std::string::npos)
      << diff;
  EXPECT_NE(diff.find("(--, --)"), std::string::npos) << diff;
  EXPECT_EQ(diff.find("lane shard=0"), std::string::npos) << diff;
}

TEST(TraceDiffTest, EveryDivergentLaneIsReported) {
  const ReplayLog recorded = TwoLaneLog(3);
  ReplayLog replayed = recorded;
  replayed.prepares[0].seq = 90;  // Shard 0, pos 0.
  replayed.prepares[5].seq = 91;  // Shard 1, pos 2.

  const std::string diff = DescribeLaneDivergence(recorded, replayed);
  EXPECT_NE(diff.find("lane shard=0: first divergence at pos 0"),
            std::string::npos)
      << diff;
  EXPECT_NE(diff.find("lane shard=1: first divergence at pos 2"),
            std::string::npos)
      << diff;
}

TEST(TraceDiffTest, ToleratesHandBuiltLogsWithUnfilledMeta) {
  // meta.num_shards defaulted; the lane split must still find shard 3.
  ReplayLog recorded;
  recorded.prepares.push_back(Prep(0, 3, 7));
  ReplayLog replayed;
  replayed.prepares.push_back(Prep(0, 3, 8));
  const std::string diff = DescribeLaneDivergence(recorded, replayed);
  EXPECT_NE(diff.find("lane shard=3"), std::string::npos) << diff;
}

}  // namespace
}  // namespace txallo::engine

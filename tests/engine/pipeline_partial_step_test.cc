// Regression: the StepMetrics series must account for every committed
// transaction. Two historical gaps: a blocks_per_epoch larger than the
// stream collapsed the run into one short window whose trailing commits
// (cross-shard commit rounds, residual λ backlog) landed during the final
// drain and belonged to no step; and even epoch-aligned runs dropped the
// drain-tail commits. The pipeline now emits a final partial step covering
// the drain, so sum(step.committed) == report.sim.committed always.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "txallo/allocator/registry.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

chain::Ledger SmallLedger(uint64_t blocks, uint64_t seed = 7) {
  workload::EthereumLikeConfig config;
  config.num_blocks = blocks;
  config.txs_per_block = 20;
  config.num_accounts = 300;
  config.num_communities = 8;
  config.seed = seed;
  workload::EthereumLikeGenerator generator(config);
  return generator.GenerateLedger(blocks);
}

Result<engine::PipelineResult> RunPipeline(const chain::Ledger& ledger,
                                   uint32_t blocks_per_epoch,
                                   double capacity) {
  const uint32_t k = 4;
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), k, 2.0);
  auto made = allocator::MakeAllocatorFromSpec("hash", options);
  if (!made.ok()) return made.status();
  engine::EngineConfig config;
  config.num_shards = k;
  config.work.capacity_per_block = capacity;
  config.hash_route_unassigned = true;
  engine::ParallelEngine engine(config, nullptr);
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = blocks_per_epoch;
  return engine::RunReallocatedStream(ledger, (*made)->AsOnline(), &engine,
                                      pipeline);
}

uint64_t SumCommitted(const engine::PipelineResult& result) {
  uint64_t sum = 0;
  for (const engine::StepMetrics& step : result.steps) sum += step.committed;
  return sum;
}

TEST(PipelinePartialStepTest, OversizedEpochEmitsOnePartialWindowPlusDrain) {
  const chain::Ledger ledger = SmallLedger(10);
  auto result = RunPipeline(ledger, /*blocks_per_epoch=*/100, /*capacity=*/50.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The whole ledger is one partial window; nothing is silently dropped.
  ASSERT_GE(result->steps.size(), 1u);
  EXPECT_EQ(result->steps[0].first_block, 0u);
  EXPECT_EQ(result->steps[0].last_block, 10u);
  EXPECT_EQ(result->steps[0].submitted, ledger.num_transactions());
  EXPECT_EQ(result->epochs, 0u);  // No boundary inside a single window.
  EXPECT_EQ(SumCommitted(*result), result->report.sim.committed);
  EXPECT_EQ(result->report.sim.committed, ledger.num_transactions());
}

TEST(PipelinePartialStepTest, DrainTailStepCapturesCommitRoundSpill) {
  // Ample capacity: every part executes within its block, but cross-shard
  // commit rounds still land one block after the stream ends.
  const chain::Ledger ledger = SmallLedger(12);
  auto result = RunPipeline(ledger, /*blocks_per_epoch=*/4, /*capacity=*/10'000.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->steps.size(), 3u);
  EXPECT_EQ(SumCommitted(*result), result->report.sim.committed);
  const engine::StepMetrics& tail = result->steps.back();
  if (result->steps.size() > 3) {
    // The drain step: commits only, no ingest, no install, and its block
    // range starts exactly where the ledger ended.
    EXPECT_EQ(tail.first_block, 12u);
    EXPECT_EQ(tail.last_block, result->report.sim.blocks_elapsed);
    EXPECT_EQ(tail.submitted, 0u);
    EXPECT_GT(tail.committed, 0u);
    EXPECT_FALSE(tail.installed);
    EXPECT_DOUBLE_EQ(tail.alloc_seconds, 0.0);
  }
}

TEST(PipelinePartialStepTest, TightCapacityBacklogDrainsIntoTailStep) {
  // λ far below the offered load: most commits land after the stream, in
  // the drain. They must all be accounted to the tail step.
  const chain::Ledger ledger = SmallLedger(8, /*seed=*/19);
  auto result = RunPipeline(ledger, /*blocks_per_epoch=*/8, /*capacity=*/3.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->steps.size(), 2u);  // One ledger window + the drain.
  EXPECT_EQ(result->report.sim.committed, ledger.num_transactions());
  EXPECT_EQ(SumCommitted(*result), result->report.sim.committed);
  EXPECT_GT(result->steps[1].committed, result->steps[0].committed)
      << "the backlog should dominate under capacity 3.0";
  EXPECT_GT(result->steps[1].last_block, result->steps[1].first_block);
  EXPECT_GT(result->steps[1].throughput_per_block, 0.0);
}

TEST(PipelinePartialStepTest, EmptyLedgerYieldsEmptySeries) {
  auto result = RunPipeline(chain::Ledger(), /*blocks_per_epoch=*/10,
                    /*capacity=*/100.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->steps.empty());
  EXPECT_EQ(result->report.sim.committed, 0u);
}

}  // namespace
}  // namespace txallo

// Multi-producer ingest: the IngestRouter fanning one block across N
// producer threads into the engine's per-shard MPSC queues. The stress
// tests are what the TSan CI job runs — routing reads, 2PC registration and
// queue pushes all race across producers by design.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "txallo/engine/engine.h"
#include "txallo/engine/ingest_router.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

std::shared_ptr<const alloc::Allocation> RoundRobin(size_t accounts,
                                                    uint32_t k) {
  auto allocation = std::make_shared<alloc::Allocation>(accounts, k);
  for (size_t a = 0; a < accounts; ++a) {
    allocation->Assign(static_cast<chain::AccountId>(a),
                       static_cast<alloc::ShardId>(a % k));
  }
  return allocation;
}

chain::Ledger DriftingLedger(uint64_t blocks, uint64_t txs_per_block,
                             uint64_t accounts, uint64_t seed) {
  workload::EthereumLikeConfig config;
  config.num_blocks = blocks;
  config.txs_per_block = txs_per_block;
  config.num_accounts = accounts;
  config.num_communities = 16;
  config.seed = seed;
  workload::EthereumLikeGenerator generator(config);
  return generator.GenerateLedger(blocks);
}

engine::EngineReport RunLedger(const chain::Ledger& ledger, uint32_t k,
                               uint32_t engine_threads, uint32_t producers,
                               double capacity) {
  engine::EngineConfig config;
  config.num_shards = k;
  config.num_threads = engine_threads;
  config.work.capacity_per_block = capacity;
  config.hash_route_unassigned = true;
  engine::ParallelEngine engine(config, RoundRobin(2'000, k));
  std::optional<engine::IngestRouter> router;
  if (producers >= 2) router.emplace(&engine, producers);
  for (const chain::Block& block : ledger.blocks()) {
    Status status = router ? router->SubmitBlock(block.transactions())
                           : engine.SubmitBlock(block.transactions());
    EXPECT_TRUE(status.ok()) << status.ToString();
    engine.Tick();
  }
  return engine.DrainAndReport();
}

TEST(IngestRouterTest, StressTotalsMatchSingleDriverUnderTightCapacity) {
  // Tight λ: per-lane FIFO order differs across producer interleavings, so
  // only order-insensitive totals are pinned. 4 producers × 2 engine
  // workers is the TSan surface.
  const chain::Ledger ledger = DriftingLedger(40, 80, 2'000, 17);
  const engine::EngineReport single = RunLedger(ledger, 4, 2, 0, 30.0);
  const engine::EngineReport routed = RunLedger(ledger, 4, 2, 4, 30.0);
  EXPECT_EQ(routed.sim.submitted, single.sim.submitted);
  EXPECT_EQ(routed.sim.committed, single.sim.committed);
  EXPECT_EQ(routed.sim.cross_shard_submitted,
            single.sim.cross_shard_submitted);
  EXPECT_EQ(routed.sim.submitted, ledger.num_transactions());
  EXPECT_EQ(routed.sim.committed, ledger.num_transactions());
  EXPECT_DOUBLE_EQ(routed.sim.residual_work, 0.0);
}

TEST(IngestRouterTest, AmpleCapacityYieldsIdenticalLogicalBlockMetrics) {
  // With λ large enough that every block drains within its tick, intra-
  // block order is immaterial and the whole logical-block report matches
  // the single-driver path exactly — the acceptance bar for lifting the
  // single-producer contract.
  const chain::Ledger ledger = DriftingLedger(30, 60, 1'500, 23);
  const engine::EngineReport single = RunLedger(ledger, 4, 2, 0, 10'000.0);
  const engine::EngineReport routed = RunLedger(ledger, 4, 2, 3, 10'000.0);
  EXPECT_EQ(routed.sim.submitted, single.sim.submitted);
  EXPECT_EQ(routed.sim.committed, single.sim.committed);
  EXPECT_EQ(routed.sim.cross_shard_submitted,
            single.sim.cross_shard_submitted);
  EXPECT_EQ(routed.sim.blocks_elapsed, single.sim.blocks_elapsed);
  EXPECT_DOUBLE_EQ(routed.sim.avg_latency_blocks,
                   single.sim.avg_latency_blocks);
  EXPECT_DOUBLE_EQ(routed.sim.max_latency_blocks,
                   single.sim.max_latency_blocks);
  EXPECT_EQ(routed.cross_shard_committed, single.cross_shard_committed);
  EXPECT_EQ(routed.prepares_received, single.prepares_received);
}

TEST(IngestRouterTest, MoreProducersThanTransactionsHandlesEmptySlices) {
  engine::EngineConfig config;
  config.num_shards = 2;
  config.work.capacity_per_block = 100.0;
  engine::ParallelEngine engine(config, RoundRobin(8, 2));
  engine::IngestRouter router(&engine, 8);
  EXPECT_EQ(router.num_producers(), 8u);
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1),
                                      chain::Transaction::Simple(2, 3)};
  ASSERT_TRUE(router.SubmitBlock(txs).ok());
  engine.Tick();
  // An empty block is fine too.
  ASSERT_TRUE(router.SubmitBlock({}).ok());
  engine.Tick();
  const engine::EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.submitted, 2u);
  EXPECT_EQ(report.sim.committed, 2u);
}

TEST(IngestRouterTest, ProducerErrorsSurfaceToTheCaller) {
  // No snapshot installed: every producer's SubmitTransactions fails; the
  // router must report it rather than swallow it.
  engine::EngineConfig config;
  config.num_shards = 2;
  engine::ParallelEngine engine(config, nullptr);
  engine::IngestRouter router(&engine, 3);
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1)};
  Status status = router.SubmitBlock(txs);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(IngestRouterTest, ConcurrentInstallsRaceParallelIngest) {
  // The full concurrency surface at once: N producers routing while an
  // allocator thread hammers InstallAllocation. TSan validates the
  // copy-on-write snapshot handoff against parallel ingest.
  const uint32_t k = 4;
  const size_t accounts = 256;
  engine::EngineConfig config;
  config.num_shards = k;
  config.num_threads = 2;
  config.work.capacity_per_block = 1'000.0;
  engine::ParallelEngine engine(config, RoundRobin(accounts, k));
  engine::IngestRouter router(&engine, 3);

  std::atomic<bool> stop{false};
  std::thread allocator([&] {
    uint64_t round = 0;
    while (!stop.load()) {
      auto next = std::make_shared<alloc::Allocation>(accounts, k);
      for (size_t a = 0; a < accounts; ++a) {
        next->Assign(static_cast<chain::AccountId>(a),
                     static_cast<alloc::ShardId>((a + round) % k));
      }
      ASSERT_TRUE(engine.InstallAllocation(std::move(next)).ok());
      ++round;
      std::this_thread::yield();
    }
  });

  std::vector<chain::Transaction> txs;
  for (size_t a = 0; a + 1 < accounts; a += 2) {
    txs.push_back(chain::Transaction::Simple(
        static_cast<chain::AccountId>(a),
        static_cast<chain::AccountId>(a + 1)));
  }
  constexpr int kBlocks = 40;
  for (int b = 0; b < kBlocks; ++b) {
    ASSERT_TRUE(router.SubmitBlock(txs).ok());
    engine.Tick();
  }
  stop.store(true);
  allocator.join();
  const engine::EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.submitted,
            static_cast<uint64_t>(kBlocks) * txs.size());
  EXPECT_EQ(report.sim.committed, report.sim.submitted);
}

}  // namespace
}  // namespace txallo

// Online reallocation: copy-on-write snapshot swaps racing live traffic,
// and the allocator-driven epoch pipeline. The concurrent-install test is
// the one the TSan CI job exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "txallo/allocator/registry.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

TEST(EngineReallocTest, InstallBetweenBlocksRedirectsTraffic) {
  // Two accounts on shard 0, then re-point account 1 to shard 1: traffic
  // turns cross-shard from the next submitted block, mid-run.
  auto before = std::make_shared<alloc::Allocation>(2, 2);
  before->Assign(0, 0);
  before->Assign(1, 0);
  engine::EngineConfig config;
  config.num_shards = 2;
  config.work.capacity_per_block = 100.0;
  engine::ParallelEngine engine(config, before);
  std::vector<chain::Transaction> txs(10, chain::Transaction::Simple(0, 1));
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  engine.Tick();
  auto after = std::make_shared<alloc::Allocation>(2, 2);
  after->Assign(0, 0);
  after->Assign(1, 1);
  ASSERT_TRUE(engine.InstallAllocation(after).ok());
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  engine.Tick();
  engine::EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.submitted, 20u);
  EXPECT_EQ(report.sim.cross_shard_submitted, 10u);
  EXPECT_EQ(report.sim.committed, 20u);
  EXPECT_EQ(report.reallocations, 1u);
  EXPECT_GE(report.realloc_pause_seconds, 0.0);
}

TEST(EngineReallocTest, ConcurrentInstallsNeverStopTheWorkers) {
  // An allocator thread hammering InstallAllocation while the driver
  // submits and ticks: no data race (TSan), no lost traffic, and every
  // snapshot routes consistently because routing reads one shared_ptr.
  const uint32_t k = 4;
  const size_t accounts = 64;
  auto initial = std::make_shared<alloc::Allocation>(accounts, k);
  for (size_t a = 0; a < accounts; ++a) {
    initial->Assign(static_cast<chain::AccountId>(a),
                    static_cast<alloc::ShardId>(a % k));
  }
  engine::EngineConfig config;
  config.num_shards = k;
  config.num_threads = 2;
  config.work.capacity_per_block = 1000.0;
  engine::ParallelEngine engine(config, initial);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> installs{0};
  std::thread allocator([&] {
    uint64_t round = 0;
    while (!stop.load()) {
      auto next = std::make_shared<alloc::Allocation>(accounts, k);
      for (size_t a = 0; a < accounts; ++a) {
        next->Assign(static_cast<chain::AccountId>(a),
                     static_cast<alloc::ShardId>((a + round) % k));
      }
      ASSERT_TRUE(engine.InstallAllocation(std::move(next)).ok());
      installs.fetch_add(1);
      ++round;
      std::this_thread::yield();
    }
  });

  std::vector<chain::Transaction> txs;
  for (size_t a = 0; a + 1 < accounts; a += 2) {
    txs.push_back(chain::Transaction::Simple(
        static_cast<chain::AccountId>(a),
        static_cast<chain::AccountId>(a + 1)));
  }
  constexpr int kBlocks = 50;
  for (int b = 0; b < kBlocks; ++b) {
    ASSERT_TRUE(engine.SubmitBlock(txs).ok());
    engine.Tick();
  }
  stop.store(true);
  allocator.join();
  engine::EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.submitted,
            static_cast<uint64_t>(kBlocks) * txs.size());
  EXPECT_EQ(report.sim.committed, report.sim.submitted);
  EXPECT_EQ(report.reallocations, installs.load());
  EXPECT_GE(report.reallocations, 1u);
}

TEST(EngineReallocTest, HybridAllocatorPipelineReallocatesPerEpoch) {
  workload::EthereumLikeConfig gen_config;
  gen_config.num_blocks = 60;
  gen_config.txs_per_block = 60;
  gen_config.num_accounts = 2'000;
  gen_config.num_communities = 20;
  gen_config.seed = 11;
  workload::EthereumLikeGenerator gen(gen_config);
  chain::Ledger ledger = gen.GenerateLedger(gen_config.num_blocks);

  const uint32_t k = 4;
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(1, k, 2.0);
  options.registry = &gen.registry();
  auto made = allocator::MakeAllocatorFromSpec(
      "txallo-hybrid:global-every=3", options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  allocator::OnlineAllocator* online = (*made)->AsOnline();
  ASSERT_NE(online, nullptr);

  engine::EngineConfig config;
  config.num_shards = k;
  config.num_threads = 2;
  config.work.capacity_per_block =
      2.0 * static_cast<double>(gen_config.txs_per_block) / k;
  config.hash_route_unassigned = true;
  engine::ParallelEngine engine(config, nullptr);

  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 10;
  auto result =
      engine::RunReallocatedStream(ledger, online, &engine, pipeline);
  ASSERT_TRUE(result.ok());
  // 6 windows of 10 blocks; the last gets no trailing update.
  EXPECT_EQ(result->epochs, 5u);
  EXPECT_EQ(result->report.reallocations, 6u);  // Initial install + 5 epochs.
  EXPECT_EQ(result->report.sim.submitted, ledger.num_transactions());
  EXPECT_EQ(result->report.sim.committed, ledger.num_transactions());
  EXPECT_GT(result->accounts_moved, 0u);
  EXPECT_GT(result->alloc_seconds, 0.0);
  // The learned mapping should beat pure hash routing on cross-shard share.
  EXPECT_LT(result->report.sim.cross_shard_submitted,
            result->report.sim.submitted);
}

TEST(EngineReallocTest, PipelineRejectsZeroEpoch) {
  const uint32_t k = 2;
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(1, k, 2.0);
  auto made = allocator::MakeAllocator("hash", options);
  ASSERT_TRUE(made.ok());
  engine::EngineConfig config;
  config.num_shards = k;
  config.hash_route_unassigned = true;
  engine::ParallelEngine engine(config, nullptr);
  chain::Ledger ledger;
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 0;
  auto result = engine::RunReallocatedStream(ledger, (*made)->AsOnline(),
                                             &engine, pipeline);
  EXPECT_FALSE(result.ok());
}

TEST(EngineReallocTest, PipelineEnforcesHashRoutingPrecondition) {
  // The documented hash_route_unassigned contract is now enforced: an
  // engine that would reject newly born accounts mid-epoch is refused up
  // front instead of failing on the first such SubmitBlock.
  const uint32_t k = 2;
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(1, k, 2.0);
  auto made = allocator::MakeAllocator("hash", options);
  ASSERT_TRUE(made.ok());
  engine::EngineConfig config;
  config.num_shards = k;  // hash_route_unassigned left false.
  engine::ParallelEngine engine(config, nullptr);
  chain::Ledger ledger;
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 10;
  auto result = engine::RunReallocatedStream(ledger, (*made)->AsOnline(),
                                             &engine, pipeline);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("hash_route_unassigned"),
            std::string::npos);
}

}  // namespace
}  // namespace txallo

#include "txallo/engine/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace txallo::engine {
namespace {

std::shared_ptr<alloc::Allocation> MakeAllocation(
    size_t accounts, uint32_t shards,
    const std::vector<alloc::ShardId>& assignment) {
  auto a = std::make_shared<alloc::Allocation>(accounts, shards);
  for (size_t i = 0; i < assignment.size(); ++i) {
    a->Assign(static_cast<chain::AccountId>(i), assignment[i]);
  }
  return a;
}

EngineConfig SmallConfig(uint32_t shards, uint32_t threads) {
  EngineConfig config;
  config.num_shards = shards;
  config.num_threads = threads;
  config.work.eta = 2.0;
  config.work.capacity_per_block = 10.0;
  config.work.cross_shard_commit_rounds = 1;
  return config;
}

TEST(ParallelEngineTest, IntraBlockCommitsInOneTick) {
  auto alloc = MakeAllocation(2, 2, {0, 0});
  ParallelEngine engine(SmallConfig(2, 2), alloc);
  std::vector<chain::Transaction> txs(8, chain::Transaction::Simple(0, 1));
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  engine.Tick();
  EngineReport report = engine.Snapshot();
  EXPECT_EQ(report.sim.submitted, 8u);
  EXPECT_EQ(report.sim.committed, 8u);
  EXPECT_EQ(report.sim.cross_shard_submitted, 0u);
  EXPECT_DOUBLE_EQ(report.sim.avg_latency_blocks, 1.0);
  EXPECT_EQ(report.sim.blocks_elapsed, 1u);
  EXPECT_EQ(report.prepares_received, 8u);
}

TEST(ParallelEngineTest, CrossShardPaysEtaAndExtraRound) {
  auto alloc = MakeAllocation(2, 2, {0, 1});
  EngineConfig config = SmallConfig(2, 2);
  config.work.capacity_per_block = 100.0;
  ParallelEngine engine(config, alloc);
  std::vector<chain::Transaction> txs(10, chain::Transaction::Simple(0, 1));
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.committed, 10u);
  EXPECT_EQ(report.sim.cross_shard_submitted, 10u);
  EXPECT_EQ(report.cross_shard_committed, 10u);
  // Parts finish in block 1, commit lands one round later.
  EXPECT_DOUBLE_EQ(report.sim.avg_latency_blocks, 2.0);
  EXPECT_EQ(report.sim.blocks_elapsed, 2u);
  // Two participants voted PREPARED per transaction.
  EXPECT_EQ(report.prepares_received, 20u);
}

TEST(ParallelEngineTest, RejectsUnassignedAccountByDefault) {
  auto alloc = MakeAllocation(2, 2, {0});  // Account 1 unassigned.
  ParallelEngine engine(SmallConfig(2, 1), alloc);
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1)};
  Status st = engine.SubmitBlock(txs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ParallelEngineTest, HashFallbackRoutesUnassignedAccounts) {
  auto alloc = MakeAllocation(2, 2, {0});
  EngineConfig config = SmallConfig(2, 1);
  config.hash_route_unassigned = true;
  ParallelEngine engine(config, alloc);
  // Account 1 hash-routes to shard 1 % 2 = 1 -> cross-shard with account 0.
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1)};
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.committed, 1u);
  EXPECT_EQ(report.sim.cross_shard_submitted, 1u);
}

TEST(ParallelEngineTest, MismatchedInitialSnapshotIsRejectedLoudly) {
  // A 4-shard snapshot handed to an 8-shard engine must not silently
  // mis-route (hash fallback would fold all traffic into 4 lanes); the
  // first SubmitBlock reports the mismatch, and a correct install recovers.
  EngineConfig config = SmallConfig(8, 1);
  config.hash_route_unassigned = true;
  ParallelEngine engine(config, MakeAllocation(2, 4, {0, 1}));
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1)};
  Status st = engine.SubmitBlock(txs);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("snapshot rejected"), std::string::npos);
  ASSERT_TRUE(
      engine.InstallAllocation(MakeAllocation(2, 8, {0, 1})).ok());
  EXPECT_TRUE(engine.SubmitBlock(txs).ok());
  EXPECT_EQ(engine.DrainAndReport().sim.committed, 1u);
}

TEST(ParallelEngineTest, NoSnapshotFailsUntilInstalled) {
  ParallelEngine engine(SmallConfig(2, 1), nullptr);
  std::vector<chain::Transaction> txs{chain::Transaction::Simple(0, 1)};
  EXPECT_FALSE(engine.SubmitBlock(txs).ok());
  EXPECT_FALSE(engine.InstallAllocation(nullptr).ok());
  // Wrong shard count is rejected.
  EXPECT_FALSE(
      engine.InstallAllocation(MakeAllocation(2, 3, {0, 1})).ok());
  ASSERT_TRUE(
      engine.InstallAllocation(MakeAllocation(2, 2, {0, 1})).ok());
  EXPECT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.committed, 1u);
  EXPECT_EQ(report.reallocations, 1u);
}

TEST(ParallelEngineTest, CapacityBacklogCarriesAcrossTicks) {
  // 25 intra txs into one shard at capacity 10: three blocks to drain.
  auto alloc = MakeAllocation(2, 2, {0, 0});
  ParallelEngine engine(SmallConfig(2, 2), alloc);
  std::vector<chain::Transaction> txs(25, chain::Transaction::Simple(0, 1));
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  engine.Tick();
  EngineReport mid = engine.Snapshot();
  EXPECT_EQ(mid.sim.committed, 10u);
  EXPECT_DOUBLE_EQ(mid.sim.residual_work, 15.0);
  EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.committed, 25u);
  EXPECT_EQ(report.sim.blocks_elapsed, 3u);
  EXPECT_DOUBLE_EQ(report.sim.max_latency_blocks, 3.0);
  EXPECT_DOUBLE_EQ(report.sim.residual_work, 0.0);
}

TEST(ParallelEngineTest, ThreadCountDoesNotChangeResults) {
  // Logical-block semantics are thread-count invariant: run the same
  // workload under 1, 2, and 4 workers and demand identical reports.
  std::vector<chain::Transaction> txs;
  for (int i = 0; i < 40; ++i) {
    txs.push_back(chain::Transaction::Simple(
        static_cast<chain::AccountId>(i % 6),
        static_cast<chain::AccountId>((i + 1) % 6)));
  }
  auto alloc = MakeAllocation(6, 4, {0, 0, 1, 2, 3, 3});
  EngineReport reference;
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParallelEngine engine(SmallConfig(4, threads), alloc);
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(engine.SubmitBlock(txs).ok());
      engine.Tick();
    }
    EngineReport report = engine.DrainAndReport();
    EXPECT_EQ(report.num_workers, threads);
    if (threads == 1) {
      reference = report;
      continue;
    }
    EXPECT_EQ(report.sim.committed, reference.sim.committed);
    EXPECT_EQ(report.sim.blocks_elapsed, reference.sim.blocks_elapsed);
    EXPECT_NEAR(report.sim.avg_latency_blocks,
                reference.sim.avg_latency_blocks, 1e-9);
    EXPECT_DOUBLE_EQ(report.sim.max_latency_blocks,
                     reference.sim.max_latency_blocks);
    EXPECT_NEAR(report.sim.mean_utilization, reference.sim.mean_utilization,
                1e-12);
  }
}

TEST(ParallelEngineTest, MoreThreadsThanShardsIsClamped) {
  auto alloc = MakeAllocation(2, 2, {0, 1});
  ParallelEngine engine(SmallConfig(2, 16), alloc);
  EXPECT_EQ(engine.num_workers(), 2u);
}

TEST(ParallelEngineTest, BoundedQueueBackpressureStillCompletes) {
  // Queue capacity 4 against a 200-part block: Push must block and the
  // full-handler service path must drain without a tick.
  auto alloc = MakeAllocation(2, 2, {0, 0});
  EngineConfig config = SmallConfig(2, 2);
  config.queue_capacity = 4;
  config.work.capacity_per_block = 500.0;
  ParallelEngine engine(config, alloc);
  std::vector<chain::Transaction> txs(200, chain::Transaction::Simple(0, 1));
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport report = engine.DrainAndReport();
  EXPECT_EQ(report.sim.committed, 200u);
  ASSERT_EQ(report.max_queue_depth.size(), 2u);
  EXPECT_LE(report.max_queue_depth[0], 4u);
  EXPECT_EQ(report.sim.blocks_elapsed, 1u);
}

TEST(ParallelEngineTest, QueueDepthHighWaterIsReported) {
  auto alloc = MakeAllocation(2, 2, {0, 1});
  EngineConfig config = SmallConfig(2, 2);
  ParallelEngine engine(config, alloc);
  std::vector<chain::Transaction> txs(6, chain::Transaction::Simple(0, 0));
  ASSERT_TRUE(engine.SubmitBlock(txs).ok());
  EngineReport report = engine.DrainAndReport();
  ASSERT_EQ(report.max_queue_depth.size(), 2u);
  EXPECT_GE(report.max_queue_depth[0], 1u);
  EXPECT_EQ(report.max_queue_depth[1], 0u);
}

}  // namespace
}  // namespace txallo::engine

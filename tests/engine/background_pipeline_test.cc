// The background allocation stage: RebalanceTask::Run() on the
// BackgroundAllocator worker racing live ingest/ticks, and the pipeline's
// determinism guarantee — kBackground's per-step block-level metrics are
// bit-identical to kDriverDeferred's (same logical install schedule, the
// allocation latency just hides behind execution). Runs under TSan via the
// "engine" label.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "txallo/allocator/registry.h"
#include "txallo/engine/background_allocator.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

struct PipelineFixture {
  workload::EthereumLikeConfig config;
  std::unique_ptr<workload::EthereumLikeGenerator> generator;
  chain::Ledger ledger;
};

PipelineFixture MakeFixture(uint64_t blocks = 48, uint64_t seed = 29) {
  PipelineFixture f;
  f.config.num_blocks = blocks;
  f.config.txs_per_block = 50;
  f.config.num_accounts = 1'500;
  f.config.num_communities = 16;
  f.config.seed = seed;
  f.config.drift_interval_blocks = blocks / 3;
  f.generator = std::make_unique<workload::EthereumLikeGenerator>(f.config);
  f.ledger = f.generator->GenerateLedger(f.config.num_blocks);
  return f;
}

Result<engine::PipelineResult> RunMode(const PipelineFixture& f,
                                       const std::string& spec,
                                       engine::AllocatorMode mode,
                                       uint32_t producers = 0,
                                       uint32_t epoch_blocks = 8) {
  const uint32_t k = 4;
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      f.ledger.num_transactions(), k, 2.0);
  options.registry = &f.generator->registry();
  auto made = allocator::MakeAllocatorFromSpec(spec, options);
  if (!made.ok()) return made.status();
  allocator::OnlineAllocator* online = (*made)->AsOnline();
  if (online == nullptr) {
    return Status::InvalidArgument(spec + " is one-shot only");
  }
  engine::EngineConfig config;
  config.num_shards = k;
  config.num_threads = 2;
  config.work.capacity_per_block =
      2.0 * static_cast<double>(f.config.txs_per_block) / k;
  config.hash_route_unassigned = true;
  engine::ParallelEngine engine(config, nullptr);
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = epoch_blocks;
  pipeline.allocator_mode = mode;
  pipeline.ingest_producers = producers;
  return engine::RunReallocatedStream(f.ledger, online, &engine, pipeline);
}

void ExpectStepsIdentical(const engine::PipelineResult& a,
                          const engine::PipelineResult& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    EXPECT_EQ(a.steps[i].first_block, b.steps[i].first_block);
    EXPECT_EQ(a.steps[i].last_block, b.steps[i].last_block);
    EXPECT_EQ(a.steps[i].submitted, b.steps[i].submitted);
    EXPECT_EQ(a.steps[i].committed, b.steps[i].committed);
    EXPECT_EQ(a.steps[i].cross_shard_submitted,
              b.steps[i].cross_shard_submitted);
    EXPECT_DOUBLE_EQ(a.steps[i].throughput_per_block,
                     b.steps[i].throughput_per_block);
    EXPECT_DOUBLE_EQ(a.steps[i].cross_shard_ratio,
                     b.steps[i].cross_shard_ratio);
    EXPECT_EQ(a.steps[i].installed, b.steps[i].installed);
  }
}

TEST(BackgroundAllocatorTest, RunsTaskOffThreadAndReportsTimings) {
  const PipelineFixture f = MakeFixture(12);
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      f.ledger.num_transactions(), 4, 2.0);
  options.registry = &f.generator->registry();
  auto made = allocator::MakeAllocator("metis", options);
  ASSERT_TRUE(made.ok());
  allocator::OnlineAllocator* online = (*made)->AsOnline();
  ASSERT_NE(online, nullptr);
  for (const chain::Block& block : f.ledger.blocks()) {
    online->ApplyBlock(block);
  }

  engine::BackgroundAllocator background;
  EXPECT_FALSE(background.busy());
  EXPECT_FALSE(background.Collect().ok());  // Nothing in flight.
  EXPECT_FALSE(background.Launch(nullptr).ok());

  std::unique_ptr<allocator::RebalanceTask> task = online->BeginRebalance();
  ASSERT_NE(task, nullptr);
  ASSERT_TRUE(background.Launch(std::move(task)).ok());
  EXPECT_TRUE(background.busy());
  // Double-launch while busy is rejected.
  EXPECT_FALSE(background.Launch(online->BeginRebalance()).ok());
  auto outcome = background.Collect();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(background.busy());
  ASSERT_TRUE(outcome->mapping.ok());
  ASSERT_TRUE(outcome->task->Commit().ok());
  EXPECT_GE(outcome->run_seconds, 0.0);
  EXPECT_GE(outcome->wait_seconds, 0.0);
  EXPECT_TRUE(online->CurrentAllocation() == *outcome->mapping);
  // The worker is reusable for the next epoch.
  std::unique_ptr<allocator::RebalanceTask> again = online->BeginRebalance();
  ASSERT_NE(again, nullptr);
  ASSERT_TRUE(background.Launch(std::move(again)).ok());
  auto second = background.Collect();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->task->Commit().ok());
}

TEST(BackgroundAllocatorTest, DroppedUncollectedTaskDoesNotWedgeAllocator) {
  // The pipeline's error paths destroy the BackgroundAllocator with a task
  // still in flight; abandonment (destruction without Commit) must release
  // the strategy's outstanding-task bookkeeping — a TxAllo allocator used
  // to stay wedged (BeginRebalance() == nullptr forever) and buffer every
  // subsequent block unboundedly.
  const PipelineFixture f = MakeFixture(16);
  for (const std::string spec :
       {"txallo-hybrid:global-every=3", "broker:inner=txallo-hybrid"}) {
    SCOPED_TRACE(spec);
    allocator::AllocatorOptions options;
    options.params = alloc::AllocationParams::ForExperiment(
        f.ledger.num_transactions(), 4, 2.0);
    options.registry = &f.generator->registry();
    auto made = allocator::MakeAllocatorFromSpec(spec, options);
    ASSERT_TRUE(made.ok());
    allocator::OnlineAllocator* online = (*made)->AsOnline();
    ASSERT_NE(online, nullptr);
    for (const chain::Block& block : f.ledger.blocks()) {
      online->ApplyBlock(block);
    }
    {
      engine::BackgroundAllocator background;
      ASSERT_TRUE(background.Launch(online->BeginRebalance()).ok());
      // Destroyed uncollected: Run may or may not have started; either
      // way the task is dropped without Commit().
    }
    online->ApplyBlock(f.ledger.blocks().front());
    std::unique_ptr<allocator::RebalanceTask> task = online->BeginRebalance();
    ASSERT_NE(task, nullptr) << "allocator wedged by the abandoned task";
    ASSERT_TRUE(task->Run().ok());
    ASSERT_TRUE(task->Commit().ok());
  }
}

TEST(BackgroundAllocatorTest, AbandonedTaskMappingIsNeverFoldedIn) {
  // Dropping a task must not apply its mapping: CurrentAllocation() stays
  // whatever the last committed rebalance produced.
  const PipelineFixture f = MakeFixture(16);
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      f.ledger.num_transactions(), 4, 2.0);
  options.registry = &f.generator->registry();
  auto made = allocator::MakeAllocator("metis", options);
  ASSERT_TRUE(made.ok());
  allocator::OnlineAllocator* online = (*made)->AsOnline();
  const size_t half = f.ledger.blocks().size() / 2;
  for (size_t b = 0; b < half; ++b) online->ApplyBlock(f.ledger.blocks()[b]);
  auto committed = online->Rebalance();
  ASSERT_TRUE(committed.ok());
  for (size_t b = half; b < f.ledger.blocks().size(); ++b) {
    online->ApplyBlock(f.ledger.blocks()[b]);
  }
  {
    std::unique_ptr<allocator::RebalanceTask> task = online->BeginRebalance();
    ASSERT_NE(task, nullptr);
    ASSERT_TRUE(task->Run().ok());
    // Dropped without Commit().
  }
  EXPECT_TRUE(online->CurrentAllocation() == *committed);
}

TEST(BackgroundPipelineTest, BackgroundMatchesDeferredStepForStep) {
  // The acceptance bar: background allocation must not change any logical
  // block-level number — only where the allocation latency is spent.
  const PipelineFixture f = MakeFixture();
  for (const std::string spec :
       {"txallo-hybrid:global-every=3", "metis", "contrib"}) {
    SCOPED_TRACE(spec);
    auto deferred =
        RunMode(f, spec, engine::AllocatorMode::kDriverDeferred);
    auto background = RunMode(f, spec, engine::AllocatorMode::kBackground);
    ASSERT_TRUE(deferred.ok()) << deferred.status().ToString();
    ASSERT_TRUE(background.ok()) << background.status().ToString();
    ExpectStepsIdentical(*deferred, *background);
    EXPECT_EQ(background->epochs, deferred->epochs);
    EXPECT_EQ(background->accounts_moved, deferred->accounts_moved);
    EXPECT_EQ(background->report.sim.submitted,
              deferred->report.sim.submitted);
    EXPECT_EQ(background->report.sim.committed,
              deferred->report.sim.committed);
    EXPECT_EQ(background->report.sim.cross_shard_submitted,
              deferred->report.sim.cross_shard_submitted);
    EXPECT_EQ(background->report.sim.blocks_elapsed,
              deferred->report.sim.blocks_elapsed);
    EXPECT_DOUBLE_EQ(background->report.sim.avg_latency_blocks,
                     deferred->report.sim.avg_latency_blocks);
    EXPECT_EQ(background->report.reallocations,
              deferred->report.reallocations);
    // The deferred driver stalls for every rebalance; background hides the
    // latency (wait <= compute, never more).
    EXPECT_DOUBLE_EQ(deferred->alloc_overlap_ratio, 0.0);
    EXPECT_GE(background->alloc_overlap_ratio, 0.0);
    EXPECT_LE(background->alloc_overlap_ratio, 1.0);
  }
}

TEST(BackgroundPipelineTest, ReportsPositiveOverlapOnMultiEpochRun) {
  // alloc_overlap_ratio > 0: at least part of the allocation latency hides
  // behind execution. Submitting/ticking an epoch takes strictly positive
  // wall time, so a cheap strategy's Run() always beats the driver to the
  // next boundary.
  const PipelineFixture f = MakeFixture(60, 31);
  auto result = RunMode(f, "hash", engine::AllocatorMode::kBackground,
                        /*producers=*/0, /*epoch_blocks=*/6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->epochs, 5u);
  EXPECT_GT(result->alloc_seconds, 0.0);
  EXPECT_GT(result->alloc_overlap_ratio, 0.0);
}

TEST(BackgroundPipelineTest, BackgroundRebalanceDuringParallelIngest) {
  // The full pipeline: N ingest producers ∥ shard execution ∥ background
  // rebalances, across every strategy shape (controller clone, graph
  // double-buffer, scheduler copy, decorator). TSan covers the handoffs.
  const PipelineFixture f = MakeFixture();
  for (const std::string spec :
       {"txallo-hybrid:global-every=3", "shard-scheduler",
        "broker:inner=contrib"}) {
    SCOPED_TRACE(spec);
    auto result = RunMode(f, spec, engine::AllocatorMode::kBackground,
                          /*producers=*/3);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->report.sim.submitted, f.ledger.num_transactions());
    EXPECT_EQ(result->report.sim.committed, f.ledger.num_transactions());
    EXPECT_EQ(result->epochs, 5u);  // 6 windows of 8 blocks.
    // Initial install + one deferred install per boundary except the first.
    EXPECT_EQ(result->report.reallocations, 5u);
  }
}

TEST(BackgroundPipelineTest, DeferredInstallScheduleIsOneBoundaryLate) {
  const PipelineFixture f = MakeFixture();
  auto sync = RunMode(f, "metis", engine::AllocatorMode::kDriverSync);
  auto deferred = RunMode(f, "metis", engine::AllocatorMode::kDriverDeferred);
  ASSERT_TRUE(sync.ok() && deferred.ok());
  // 6 windows: 5 boundary rebalances in both schedules.
  EXPECT_EQ(sync->epochs, 5u);
  EXPECT_EQ(deferred->epochs, 5u);
  // Sync installs at every boundary (plus the initial snapshot); deferred
  // publishes one boundary later, so its last mapping never installs.
  EXPECT_EQ(sync->report.reallocations, 6u);
  EXPECT_EQ(deferred->report.reallocations, 5u);
  // 6 ledger windows, plus a trailing drain step when pending commit
  // rounds spill past the stream (both schedules drain identically).
  ASSERT_GE(sync->steps.size(), 6u);
  ASSERT_EQ(sync->steps.size(), deferred->steps.size());
  EXPECT_TRUE(sync->steps[0].installed);
  EXPECT_FALSE(deferred->steps[0].installed);  // Nothing held yet.
  EXPECT_TRUE(deferred->steps[1].installed);
  EXPECT_FALSE(sync->steps[5].installed);      // Trailing window: no update.
  EXPECT_FALSE(deferred->steps[5].installed);
  for (size_t i = 6; i < sync->steps.size(); ++i) {
    EXPECT_EQ(sync->steps[i].submitted, 0u);   // Drain: commits only.
    EXPECT_FALSE(sync->steps[i].installed);
  }
}

}  // namespace
}  // namespace txallo

// Golden-trace replay: the determinism acceptance bar of the record/replay
// subsystem. A 3-epoch background-mode run is recorded once and must
// replay bit-identically — prepare order, 2PC outcome stream, per-step
// metrics series, alloc_overlap_ratio — under every thread count and
// ingest fan-out, and the committed fixture in testdata/ pins today's
// canonical execution against silent behaviour drift (regenerate it
// deliberately with the `regen-golden-trace` target).
#include <gtest/gtest.h>

#include <string>

#include "golden_trace_fixture.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/ethereum_like.h"

#ifndef TXALLO_TESTDATA_DIR
#error "TXALLO_TESTDATA_DIR must point at tests/engine/testdata"
#endif

namespace txallo {
namespace {

chain::Ledger GoldenLedger() {
  workload::EthereumLikeGenerator generator(testing::GoldenWorkloadConfig());
  return generator.GenerateLedger(testing::kGoldenBlocks);
}

Result<engine::PipelineResult> Replay(const chain::Ledger& ledger,
                                      const engine::ReplayLog& log,
                                      uint32_t threads, uint32_t producers,
                                      engine::ReplayLog* rerecord = nullptr) {
  engine::ParallelEngine engine(testing::GoldenEngineConfig(threads),
                                nullptr);
  engine::PipelineConfig pipeline;
  pipeline.ingest_producers = producers;
  pipeline.record = rerecord;
  return engine::ReplayRecordedStream(ledger, log, &engine, pipeline);
}

TEST(ReplayGoldenTest, FreshRecordingReplaysAcrossThreadsAndProducers) {
  const chain::Ledger ledger = GoldenLedger();
  auto recorded = testing::RecordGoldenTrace();
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  ASSERT_EQ(recorded->epochs, 3u);  // The 3-epoch run the fixture pins.
  ASSERT_GE(recorded->installs.size(), 2u);
  ASSERT_FALSE(recorded->prepares.empty());
  // The state backend is on: every tick fingerprints committed state, and
  // the tight golden funding makes the abort path part of the pinned run.
  ASSERT_TRUE(recorded->meta.state_enabled);
  ASSERT_FALSE(recorded->state_roots.empty());
  uint64_t aborted = 0;
  for (const engine::CommitEvent& event : recorded->commits) {
    if (event.aborted) ++aborted;
  }
  EXPECT_GT(aborted, 0u) << "golden funding no longer exercises aborts";

  for (const uint32_t threads : {1u, 2u, 8u}) {
    for (const uint32_t producers : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " producers=" + std::to_string(producers));
      engine::ReplayLog rerecorded;
      auto replayed =
          Replay(ledger, *recorded, threads, producers, &rerecorded);
      // ReplayRecordedStream verifies bit-identity internally; ok() IS the
      // assertion. The explicit re-compare below documents what that
      // means: the prepare stream, 2PC outcomes and step series are equal
      // event for event.
      ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
      EXPECT_EQ(engine::DescribeTraceDivergence(*recorded, rerecorded), "");
      // Structural state verification: the per-tick Merkle roots — not
      // just the event streams — reproduce bit-identically whatever the
      // thread count and ingest fan-out.
      EXPECT_EQ(rerecorded.state_roots, recorded->state_roots);
      ASSERT_EQ(replayed->steps.size(), recorded->steps.size());
      for (size_t i = 0; i < recorded->steps.size(); ++i) {
        EXPECT_EQ(replayed->steps[i], recorded->steps[i])
            << "step " << i << " diverged";
      }
      // Wall-clock observations are preserved verbatim, so even the
      // overlap ratio is bit-identical across replays.
      EXPECT_EQ(replayed->alloc_overlap_ratio,
                recorded->alloc_overlap_ratio);
      EXPECT_EQ(replayed->alloc_seconds, recorded->alloc_seconds);
      EXPECT_EQ(replayed->accounts_moved, recorded->accounts_moved);
      EXPECT_EQ(replayed->epochs, recorded->epochs);
    }
  }
}

TEST(ReplayGoldenTest, CommittedFixtureReplaysBitIdentically) {
  const std::string path =
      std::string(TXALLO_TESTDATA_DIR) + "/" + testing::kGoldenTraceFile;
  auto fixture = engine::LoadReplayLog(path);
  ASSERT_TRUE(fixture.ok())
      << fixture.status().ToString()
      << " — regenerate with: cmake --build <build> --target "
         "regen-golden-trace";
  const chain::Ledger ledger = GoldenLedger();
  ASSERT_EQ(fixture->meta.ledger_fingerprint,
            engine::FingerprintLedger(ledger))
      << "the golden workload drifted; the fixture no longer matches";
  for (const uint32_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto replayed = Replay(ledger, *fixture, threads, /*producers=*/2);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  }
}

TEST(ReplayGoldenTest, CommittedFixtureMatchesFreshRecording) {
  // The strongest drift guard: recording the golden scenario today must
  // produce byte-for-byte the deterministic content committed in the
  // fixture — engine execution, ingest order, allocator output and install
  // schedule all pinned at once.
  const std::string path =
      std::string(TXALLO_TESTDATA_DIR) + "/" + testing::kGoldenTraceFile;
  auto fixture = engine::LoadReplayLog(path);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto fresh = testing::RecordGoldenTrace();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(engine::DescribeTraceDivergence(*fixture, *fresh), "")
      << "intentional change? regenerate via the regen-golden-trace target "
         "and review the fixture diff";
}

}  // namespace
}  // namespace txallo

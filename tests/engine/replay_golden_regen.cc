// Regenerates the committed golden trace fixture. Not a test — the
// `regen-golden-trace` CMake target runs it with the testdata path after
// an intentional behaviour change:
//
//   cmake --build build --target regen-golden-trace
//
// Review the resulting fixture diff like any other golden update.
#include <cstdio>

#include "golden_trace_fixture.h"
#include "txallo/engine/replay.h"

int main(int argc, char** argv) {
  using namespace txallo;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-trace-path>\n", argv[0]);
    return 2;
  }
  auto log = testing::RecordGoldenTrace();
  if (!log.ok()) {
    std::fprintf(stderr, "recording the golden scenario failed: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }
  if (Status saved = engine::SaveReplayLog(*log, argv[1]); !saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu prepares, %zu commits, %zu installs, %zu steps\n",
              argv[1], log->prepares.size(), log->commits.size(),
              log->installs.size(), log->steps.size());
  return 0;
}

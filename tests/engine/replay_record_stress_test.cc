// Trace recording under the full concurrency surface: raw
// SubmitTransactions producers racing each other and a BackgroundAllocator
// rebalance whose result installs mid-run, all while the engine records.
// TSan (the "engine"/"replay" labels) proves the log is written race-free;
// the assertions prove it is *complete* (totals match) and *canonical*
// (byte-identical to a single-threaded reference run that used the same
// sequence tags and install schedule).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "txallo/allocator/registry.h"
#include "txallo/engine/background_allocator.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

constexpr uint32_t kShards = 4;
constexpr uint64_t kBlocks = 30;
constexpr int kProducers = 4;
// The block at whose boundary the background rebalance result installs.
constexpr uint64_t kInstallBoundary = 15;

chain::Ledger StressLedger() {
  workload::EthereumLikeConfig config;
  config.num_blocks = kBlocks;
  config.txs_per_block = 64;
  config.num_accounts = 1'200;
  config.num_communities = 12;
  config.seed = 31;
  workload::EthereumLikeGenerator generator(config);
  return generator.GenerateLedger(kBlocks);
}

engine::EngineConfig StressEngineConfig(uint32_t threads) {
  engine::EngineConfig config;
  config.num_shards = kShards;
  config.num_threads = threads;
  config.work.capacity_per_block = 20.0;  // Tight: order matters.
  config.hash_route_unassigned = true;
  return config;
}

std::shared_ptr<const alloc::Allocation> RoundRobin(size_t accounts) {
  auto allocation = std::make_shared<alloc::Allocation>(accounts, kShards);
  for (size_t a = 0; a < accounts; ++a) {
    allocation->Assign(static_cast<chain::AccountId>(a),
                       static_cast<alloc::ShardId>(a % kShards));
  }
  return allocation;
}

// Computes the mid-run reallocation off-thread exactly like the pipeline:
// BeginRebalance on the owner, Run on the BackgroundAllocator worker
// (overlapping the first kInstallBoundary blocks of ingest), Commit +
// return the mapping for installation. Deterministic output — the
// reference run installs the same object.
alloc::Allocation ComputeMidRunMapping(const chain::Ledger& ledger,
                                       engine::BackgroundAllocator* worker) {
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), kShards, 2.0);
  auto made = allocator::MakeAllocator("metis", options);
  EXPECT_TRUE(made.ok());
  allocator::OnlineAllocator* online = (*made)->AsOnline();
  for (const chain::Block& block : ledger.blocks()) {
    online->ApplyBlock(block);
  }
  std::unique_ptr<allocator::RebalanceTask> task = online->BeginRebalance();
  EXPECT_NE(task, nullptr);
  EXPECT_TRUE(worker->Launch(std::move(task)).ok());
  // Caller streams blocks while Run() executes; Collect happens at the
  // install boundary.
  auto outcome = worker->Collect();
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->task->Commit().ok());
  EXPECT_TRUE(outcome->mapping.ok());
  return std::move(outcome->mapping.value());
}

// One run of the scenario. `producers` > 1 slices every block across that
// many concurrent SubmitTransactions threads (sequence ranges reserved
// driver-side, so tags are schedule-independent); `background` computes
// the mid-run mapping on the worker, racing blocks [0, kInstallBoundary).
// With producers == 1 and background == nullptr the same mapping must be
// passed via `install`, replicating the install schedule synchronously.
struct StressRun {
  engine::ParallelEngine::Trace trace;
  engine::EngineReport report;
  alloc::Allocation installed;
};

StressRun RunScenario(const chain::Ledger& ledger, uint32_t threads,
                      int producers, bool use_background,
                      const alloc::Allocation* install = nullptr) {
  engine::ParallelEngine engine(StressEngineConfig(threads),
                                RoundRobin(1'200));
  engine.EnableTraceRecording();
  std::optional<engine::BackgroundAllocator> background;
  std::thread compute;
  StressRun run;
  if (use_background) {
    background.emplace();
    // BeginRebalance/Launch happen before the first block; Collect blocks
    // until Run() finishes on the worker, racing the ingest below.
    compute = std::thread([&] {
      run.installed = ComputeMidRunMapping(ledger, &*background);
    });
  } else {
    run.installed = *install;
  }

  for (uint64_t b = 0; b < ledger.num_blocks(); ++b) {
    if (b == kInstallBoundary) {
      if (use_background) compute.join();
      EXPECT_TRUE(engine
                      .InstallAllocation(std::make_shared<alloc::Allocation>(
                          run.installed))
                      .ok());
    }
    const std::vector<chain::Transaction>& txs =
        ledger.blocks()[b].transactions();
    // Driver-side range reservation: tags are global block positions, the
    // same for every producer count.
    const uint64_t base = engine.ReserveSequenceRange(txs.size());
    if (producers <= 1) {
      EXPECT_TRUE(engine.SubmitTransactions(txs.data(), txs.size(), base)
                      .ok());
    } else {
      std::vector<std::thread> workers;
      for (int p = 0; p < producers; ++p) {
        const size_t begin = txs.size() * static_cast<size_t>(p) /
                             static_cast<size_t>(producers);
        const size_t end = txs.size() * static_cast<size_t>(p + 1) /
                           static_cast<size_t>(producers);
        workers.emplace_back([&, begin, end] {
          if (end > begin) {
            EXPECT_TRUE(engine
                            .SubmitTransactions(txs.data() + begin,
                                                end - begin, base + begin)
                            .ok());
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    engine.Tick();
  }
  run.report = engine.DrainAndReport();
  run.trace = engine.ExtractTrace();
  return run;
}

TEST(ReplayRecordStressTest, RacingProducersAndBackgroundInstallStayCanonical) {
  const chain::Ledger ledger = StressLedger();
  // Stressed: 4 producer threads × 2 engine workers × a background
  // rebalance install, recording throughout.
  StressRun stressed = RunScenario(ledger, /*threads=*/2, kProducers,
                                   /*use_background=*/true);
  // Reference: single producer, single worker, same mapping installed at
  // the same boundary.
  StressRun reference = RunScenario(ledger, /*threads=*/1, /*producers=*/1,
                                    /*use_background=*/false,
                                    &stressed.installed);

  // Complete: every part prepared, every transaction decided, exactly once.
  EXPECT_EQ(stressed.report.sim.submitted, ledger.num_transactions());
  EXPECT_EQ(stressed.report.sim.committed, ledger.num_transactions());
  EXPECT_EQ(stressed.trace.commits.size(), ledger.num_transactions());
  EXPECT_EQ(stressed.trace.prepares.size(),
            stressed.report.prepares_received);

  // Canonical: the recorded streams are byte-identical to the reference's.
  EXPECT_EQ(stressed.report.sim.cross_shard_submitted,
            reference.report.sim.cross_shard_submitted);
  ASSERT_EQ(stressed.trace.prepares.size(), reference.trace.prepares.size());
  for (size_t i = 0; i < reference.trace.prepares.size(); ++i) {
    ASSERT_EQ(stressed.trace.prepares[i], reference.trace.prepares[i])
        << "prepare stream diverged at event " << i;
  }
  ASSERT_EQ(stressed.trace.commits.size(), reference.trace.commits.size());
  for (size_t i = 0; i < reference.trace.commits.size(); ++i) {
    ASSERT_EQ(stressed.trace.commits[i], reference.trace.commits[i])
        << "commit stream diverged at event " << i;
  }
}

}  // namespace
}  // namespace txallo

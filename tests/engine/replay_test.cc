// ReplayLog plumbing: binary round-trip fidelity, corruption rejection,
// CSV dump shape, ledger fingerprinting, and the replay-mode input guards
// (wrong engine config / wrong workload / stale engine).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "txallo/allocator/registry.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

chain::Ledger MakeLedger(uint64_t blocks = 16, uint64_t seed = 5) {
  workload::EthereumLikeConfig config;
  config.num_blocks = blocks;
  config.txs_per_block = 25;
  config.num_accounts = 400;
  config.num_communities = 8;
  config.seed = seed;
  workload::EthereumLikeGenerator generator(config);
  return generator.GenerateLedger(blocks);
}

engine::EngineConfig SmallEngineConfig() {
  engine::EngineConfig config;
  config.num_shards = 4;
  config.work.capacity_per_block = 8.0;
  config.hash_route_unassigned = true;
  return config;
}

engine::ReplayLog RecordSmallRun(const chain::Ledger& ledger) {
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), 4, 2.0);
  auto made = allocator::MakeAllocatorFromSpec("metis", options);
  EXPECT_TRUE(made.ok());
  engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
  engine::ReplayLog log;
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 4;
  pipeline.record = &log;
  auto result = engine::RunReallocatedStream(ledger, (*made)->AsOnline(),
                                             &engine, pipeline);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return log;
}

TEST(ReplayLogTest, BinaryRoundTripIsLossless) {
  const chain::Ledger ledger = MakeLedger();
  const engine::ReplayLog log = RecordSmallRun(ledger);
  ASSERT_FALSE(log.prepares.empty());
  ASSERT_FALSE(log.installs.empty());
  const std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(engine::SaveReplayLog(log, path).ok());
  auto loaded = engine::LoadReplayLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(engine::DescribeTraceDivergence(log, *loaded), "");
  // Wall-clock fields round-trip exactly too (f64 bit patterns).
  EXPECT_EQ(loaded->alloc_seconds, log.alloc_seconds);
  EXPECT_EQ(loaded->alloc_wait_seconds, log.alloc_wait_seconds);
  EXPECT_EQ(loaded->alloc_overlap_ratio, log.alloc_overlap_ratio);
  EXPECT_EQ(loaded->epochs, log.epochs);
  ASSERT_EQ(loaded->steps.size(), log.steps.size());
  for (size_t i = 0; i < log.steps.size(); ++i) {
    EXPECT_EQ(loaded->steps[i], log.steps[i]) << "step " << i;
  }
  // And the loaded trace actually replays.
  engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
  auto replayed = engine::ReplayRecordedStream(ledger, *loaded, &engine,
                                               engine::PipelineConfig{});
  EXPECT_TRUE(replayed.ok()) << replayed.status().ToString();
}

TEST(ReplayLogTest, RejectsMissingGarbageAndTruncatedFiles) {
  EXPECT_EQ(engine::LoadReplayLog(TempPath("nonexistent.trace"))
                .status()
                .code(),
            StatusCode::kIOError);

  const std::string garbage_path = TempPath("garbage.trace");
  {
    std::ofstream file(garbage_path, std::ios::binary);
    file << "definitely not a trace";
  }
  EXPECT_EQ(engine::LoadReplayLog(garbage_path).status().code(),
            StatusCode::kCorruption);

  // A valid trace cut short anywhere must be rejected, not misparsed.
  const engine::ReplayLog log = RecordSmallRun(MakeLedger());
  const std::string full_path = TempPath("full.trace");
  ASSERT_TRUE(engine::SaveReplayLog(log, full_path).ok());
  std::ifstream full(full_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(full)),
                    std::istreambuf_iterator<char>());
  const std::string truncated_path = TempPath("truncated.trace");
  for (const size_t keep :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_EQ(engine::LoadReplayLog(truncated_path).status().code(),
              StatusCode::kCorruption)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
  // Trailing junk is corruption too (the format is self-delimiting).
  std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out << "junk";
  out.close();
  EXPECT_EQ(engine::LoadReplayLog(truncated_path).status().code(),
            StatusCode::kCorruption);
}

TEST(ReplayLogTest, CsvDumpContainsEverySection) {
  const engine::ReplayLog log = RecordSmallRun(MakeLedger());
  const std::string path = TempPath("dump.csv");
  ASSERT_TRUE(engine::DumpReplayLogCsv(log, path).ok());
  std::ifstream file(path);
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_EQ(line.rfind("kind,", 0), 0u);
  size_t metas = 0, steps = 0, installs = 0, prepares = 0, commits = 0;
  while (std::getline(file, line)) {
    if (line.rfind("meta,", 0) == 0) ++metas;
    if (line.rfind("step,", 0) == 0) ++steps;
    if (line.rfind("install,", 0) == 0) ++installs;
    if (line.rfind("prepare,", 0) == 0) ++prepares;
    if (line.rfind("commit,", 0) == 0) ++commits;
  }
  EXPECT_GE(metas, 8u);
  EXPECT_EQ(steps, log.steps.size());
  EXPECT_EQ(installs, log.installs.size());
  EXPECT_EQ(prepares, log.prepares.size());
  EXPECT_EQ(commits, log.commits.size());
}

TEST(ReplayLogTest, FingerprintTracksLedgerContentAndOrder) {
  const chain::Ledger a = MakeLedger(8, /*seed=*/5);
  const chain::Ledger b = MakeLedger(8, /*seed=*/5);
  const chain::Ledger c = MakeLedger(8, /*seed=*/6);
  EXPECT_EQ(engine::FingerprintLedger(a), engine::FingerprintLedger(b));
  EXPECT_NE(engine::FingerprintLedger(a), engine::FingerprintLedger(c));
  EXPECT_NE(engine::FingerprintLedger(a),
            engine::FingerprintLedger(chain::Ledger()));
}

TEST(ReplayLogTest, ReplayGuardsRejectWrongConfigWorkloadAndStaleEngine) {
  const chain::Ledger ledger = MakeLedger();
  const engine::ReplayLog log = RecordSmallRun(ledger);

  {
    // Wrong work model.
    engine::EngineConfig config = SmallEngineConfig();
    config.work.capacity_per_block += 1.0;
    engine::ParallelEngine engine(config, nullptr);
    auto replayed = engine::ReplayRecordedStream(ledger, log, &engine,
                                                 engine::PipelineConfig{});
    EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Wrong workload.
    engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
    auto replayed = engine::ReplayRecordedStream(
        MakeLedger(16, /*seed=*/99), log, &engine, engine::PipelineConfig{});
    EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Stale engine (already ticked): the trace covers block 0 onward.
    engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
    engine.Tick();
    auto replayed = engine::ReplayRecordedStream(ledger, log, &engine,
                                                 engine::PipelineConfig{});
    EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Pre-installed snapshot: the trace's install stream provides the
    // initial mapping, so replay refuses rather than skewing
    // accounts_moved.
    auto preinstalled = std::make_shared<alloc::Allocation>(400, 4u);
    for (size_t a = 0; a < 400; ++a) {
      preinstalled->Assign(static_cast<chain::AccountId>(a),
                           static_cast<alloc::ShardId>(a % 4));
    }
    engine::ParallelEngine engine(SmallEngineConfig(), preinstalled);
    auto replayed = engine::ReplayRecordedStream(ledger, log, &engine,
                                                 engine::PipelineConfig{});
    EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Pre-submitted traffic (no tick yet, so the block clock alone cannot
    // tell): recording such an engine would leave phantom events.
    auto preinstalled = std::make_shared<alloc::Allocation>(400, 4u);
    for (size_t a = 0; a < 400; ++a) {
      preinstalled->Assign(static_cast<chain::AccountId>(a),
                           static_cast<alloc::ShardId>(a % 4));
    }
    engine::ParallelEngine engine(SmallEngineConfig(), preinstalled);
    ASSERT_TRUE(
        engine.SubmitBlock(ledger.blocks()[0].transactions()).ok());
    allocator::AllocatorOptions options;
    options.params = alloc::AllocationParams::ForExperiment(
        ledger.num_transactions(), 4, 2.0);
    auto made = allocator::MakeAllocatorFromSpec("hash", options);
    ASSERT_TRUE(made.ok());
    engine::ReplayLog record;
    engine::PipelineConfig pipeline;
    pipeline.blocks_per_epoch = 4;
    pipeline.record = &record;
    auto recorded = engine::RunReallocatedStream(ledger, (*made)->AsOnline(),
                                                 &engine, pipeline);
    EXPECT_EQ(recorded.status().code(), StatusCode::kInvalidArgument);
  }
}

engine::EngineConfig StateEngineConfig() {
  engine::EngineConfig config = SmallEngineConfig();
  config.state.enabled = true;
  config.state.initial_balance = 32;  // Tight: aborts appear in the trace.
  config.state.migration_work_per_account = 1.0;
  return config;
}

engine::ReplayLog RecordStateRun(const chain::Ledger& ledger) {
  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), 4, 2.0);
  auto made = allocator::MakeAllocatorFromSpec("metis", options);
  EXPECT_TRUE(made.ok());
  engine::ParallelEngine engine(StateEngineConfig(), nullptr);
  engine::ReplayLog log;
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 4;
  pipeline.record = &log;
  auto result = engine::RunReallocatedStream(ledger, (*made)->AsOnline(),
                                             &engine, pipeline);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return log;
}

TEST(ReplayLogTest, StateSectionsSurviveTheBinaryRoundTrip) {
  const chain::Ledger ledger = MakeLedger();
  const engine::ReplayLog log = RecordStateRun(ledger);
  ASSERT_TRUE(log.meta.state_enabled);
  EXPECT_EQ(log.meta.state_initial_balance, 32);
  ASSERT_FALSE(log.state_roots.empty());
  bool any_aborted = false;
  for (const engine::CommitEvent& event : log.commits) {
    any_aborted = any_aborted || event.aborted;
  }
  EXPECT_TRUE(any_aborted) << "funding too generous to record an abort";

  const std::string path = TempPath("state_roundtrip.trace");
  ASSERT_TRUE(engine::SaveReplayLog(log, path).ok());
  auto loaded = engine::LoadReplayLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(engine::DescribeTraceDivergence(log, *loaded), "");
  EXPECT_EQ(loaded->state_roots, log.state_roots);
  EXPECT_EQ(loaded->commits, log.commits);
  EXPECT_EQ(loaded->meta.state_initial_balance,
            log.meta.state_initial_balance);
  EXPECT_EQ(loaded->meta.state_migration_work, log.meta.state_migration_work);

  // The loaded trace replays, and the replayed run re-derives the same
  // per-tick Merkle roots (verified inside the replay harness).
  engine::ParallelEngine engine(StateEngineConfig(), nullptr);
  auto replayed = engine::ReplayRecordedStream(ledger, *loaded, &engine,
                                               engine::PipelineConfig{});
  EXPECT_TRUE(replayed.ok()) << replayed.status().ToString();

  // The CSV dump carries the new sections.
  const std::string csv_path = TempPath("state_dump.csv");
  ASSERT_TRUE(engine::DumpReplayLogCsv(log, csv_path).ok());
  std::ifstream file(csv_path);
  std::string line;
  size_t roots = 0;
  while (std::getline(file, line)) {
    if (line.rfind("state_root,", 0) == 0) ++roots;
  }
  EXPECT_EQ(roots, log.state_roots.size());
}

TEST(ReplayLogTest, ReplayGuardsRejectStateConfigMismatch) {
  const chain::Ledger ledger = MakeLedger();
  const engine::ReplayLog log = RecordStateRun(ledger);
  {
    // Backend off vs recorded on: the roots could never be re-derived.
    engine::ParallelEngine engine(SmallEngineConfig(), nullptr);
    auto replayed = engine::ReplayRecordedStream(ledger, log, &engine,
                                                 engine::PipelineConfig{});
    EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Different funding: deterministically different abort stream.
    engine::EngineConfig config = StateEngineConfig();
    config.state.initial_balance += 1;
    engine::ParallelEngine engine(config, nullptr);
    auto replayed = engine::ReplayRecordedStream(ledger, log, &engine,
                                                 engine::PipelineConfig{});
    EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // A stateless trace refuses a stateful engine just the same.
    const engine::ReplayLog stateless = RecordSmallRun(ledger);
    engine::ParallelEngine engine(StateEngineConfig(), nullptr);
    auto replayed = engine::ReplayRecordedStream(ledger, stateless, &engine,
                                                 engine::PipelineConfig{});
    EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace txallo

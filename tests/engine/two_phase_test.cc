#include "txallo/engine/two_phase.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace txallo::engine {
namespace {

sim::WorkModel Model(uint32_t commit_rounds) {
  sim::WorkModel model;
  model.cross_shard_commit_rounds = commit_rounds;
  return model;
}

TEST(TwoPhaseTest, IntraShardCommitsAtLastPrepare) {
  TwoPhaseCoordinator c(Model(1));
  const uint64_t tx = c.Register(/*arrival_block=*/0, /*participants=*/1,
                                 /*cross_shard=*/false, /*seq=*/0);
  c.PartPrepared(tx, /*block=*/3);
  const CommitStats stats = c.stats();
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.cross_shard_committed, 0u);
  EXPECT_EQ(stats.prepares_received, 1u);
  EXPECT_DOUBLE_EQ(stats.latency_sum_blocks, 3.0);
  EXPECT_TRUE(c.Idle());
}

TEST(TwoPhaseTest, CrossShardWaitsForAllVotesThenPaysExtraRound) {
  TwoPhaseCoordinator c(Model(2));
  const uint64_t tx =
      c.Register(0, /*participants=*/3, /*cross_shard=*/true, /*seq=*/0);
  c.PartPrepared(tx, 1);
  c.PartPrepared(tx, 1);
  EXPECT_EQ(c.stats().committed, 0u);
  EXPECT_EQ(c.stats().in_flight, 1u);
  c.PartPrepared(tx, 4);  // Last vote at block 4 -> decision at block 6.
  CommitStats stats = c.stats();
  EXPECT_EQ(stats.committed, 0u);
  EXPECT_EQ(stats.awaiting_commit_round, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
  c.FlushDelayed(5);  // Too early.
  EXPECT_EQ(c.stats().committed, 0u);
  c.FlushDelayed(6);
  stats = c.stats();
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.cross_shard_committed, 1u);
  EXPECT_EQ(stats.awaiting_commit_round, 0u);
  EXPECT_DOUBLE_EQ(stats.latency_sum_blocks, 6.0);
  EXPECT_DOUBLE_EQ(stats.latency_max_blocks, 6.0);
  EXPECT_TRUE(c.Idle());
}

TEST(TwoPhaseTest, ZeroCommitRoundsCommitsCrossShardImmediately) {
  TwoPhaseCoordinator c(Model(0));
  const uint64_t tx = c.Register(1, 2, /*cross_shard=*/true, /*seq=*/0);
  c.PartPrepared(tx, 2);
  c.PartPrepared(tx, 3);
  const CommitStats stats = c.stats();
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_DOUBLE_EQ(stats.latency_sum_blocks, 2.0);  // 3 - 1.
}

TEST(TwoPhaseTest, MatchesSerialSimulatorLatencyConvention) {
  // Commit-at-flush semantics: a delayed commit flushed at `now` is charged
  // now - arrival, exactly like ShardSimulator's delayed_commits_ path.
  TwoPhaseCoordinator c(Model(1));
  const uint64_t tx = c.Register(2, 2, true, /*seq=*/0);
  c.PartPrepared(tx, 5);
  c.PartPrepared(tx, 5);
  c.FlushDelayed(6);
  EXPECT_DOUBLE_EQ(c.stats().latency_sum_blocks, 4.0);  // 6 - 2.
}

TEST(TwoPhaseTest, CanonicalCommitEventsSortedByBlockThenSeq) {
  // Voting interleaving must not show in the recorded outcome stream:
  // register/vote in scrambled seq order, expect (block, seq) canonical
  // order out.
  TwoPhaseCoordinator c(Model(1));
  c.EnableEventRecording();
  const uint64_t a = c.Register(0, 1, false, /*seq=*/7);
  const uint64_t b = c.Register(0, 1, false, /*seq=*/3);
  const uint64_t x = c.Register(0, 2, true, /*seq=*/5);
  c.PartPrepared(a, 1);
  c.PartPrepared(b, 1);
  c.PartPrepared(x, 1);
  c.PartPrepared(x, 1);  // Cross: decision lands at block 2.
  c.FlushDelayed(2);
  const std::vector<CommitEvent> events = c.CanonicalCommitEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (CommitEvent{1, 3, false}));
  EXPECT_EQ(events[1], (CommitEvent{1, 7, false}));
  EXPECT_EQ(events[2], (CommitEvent{2, 5, true}));
}

TEST(TwoPhaseTest, EventRecordingOffByDefault) {
  TwoPhaseCoordinator c(Model(1));
  const uint64_t tx = c.Register(0, 1, false, 0);
  c.PartPrepared(tx, 1);
  EXPECT_TRUE(c.CanonicalCommitEvents().empty());
}

TEST(TwoPhaseTest, ConcurrentVotesFromManyWorkers) {
  TwoPhaseCoordinator c(Model(1));
  constexpr int kThreads = 8;
  constexpr int kTxPerThread = 500;
  // Each "transaction" has kThreads participants; every thread votes once
  // per transaction, concurrently.
  std::vector<uint64_t> txs;
  txs.reserve(kTxPerThread);
  for (int i = 0; i < kTxPerThread; ++i) {
    txs.push_back(c.Register(0, kThreads, true, static_cast<uint64_t>(i)));
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &txs] {
      for (uint64_t tx : txs) c.PartPrepared(tx, 1);
    });
  }
  for (auto& w : workers) w.join();
  c.FlushDelayed(2);
  const CommitStats stats = c.stats();
  EXPECT_EQ(stats.prepares_received,
            static_cast<uint64_t>(kThreads) * kTxPerThread);
  EXPECT_EQ(stats.committed, static_cast<uint64_t>(kTxPerThread));
  EXPECT_TRUE(c.Idle());
}

}  // namespace
}  // namespace txallo::engine

// The golden-trace workload: one pinned record/replay scenario shared by
// replay_golden_test.cc (which replays the committed fixture) and
// replay_golden_regen.cc (the `regen-golden-trace` CMake target that
// rewrites tests/engine/testdata/golden_small.trace after an intentional
// behaviour change).
//
// Every constant here is load-bearing: the committed binary trace is the
// canonical execution of exactly this workload under exactly this engine
// configuration, so changing anything below requires regenerating the
// fixture (`cmake --build build --target regen-golden-trace`) and
// reviewing the diff as a deliberate determinism-contract change.
#pragma once

#include <memory>

#include "txallo/allocator/registry.h"
#include "txallo/chain/ledger.h"
#include "txallo/common/status.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/engine/replay.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::testing {

inline constexpr char kGoldenTraceFile[] = "golden_small.trace";
inline constexpr uint32_t kGoldenShards = 4;
inline constexpr uint32_t kGoldenEpochBlocks = 8;
// 4 windows of 8 blocks => 3 boundary rebalances: the "3-epoch run".
inline constexpr uint64_t kGoldenBlocks = 32;
// Tight funding: 960 transfers over 600 accounts at ≤7 units per input
// drain the busy accounts' balances partway through the run, so the trace
// pins a non-trivial abort stream (insufficient balance) alongside the
// commits — the golden run must exercise the rollback path, not just the
// happy path.
inline constexpr int64_t kGoldenBalance = 24;

inline workload::EthereumLikeConfig GoldenWorkloadConfig() {
  workload::EthereumLikeConfig config;
  config.num_blocks = kGoldenBlocks;
  config.txs_per_block = 30;
  config.num_accounts = 600;
  config.num_communities = 12;
  config.seed = 97;
  config.drift_interval_blocks = 10;
  config.initial_balance = kGoldenBalance;
  return config;
}

inline engine::EngineConfig GoldenEngineConfig(uint32_t threads) {
  engine::EngineConfig config;
  config.num_shards = kGoldenShards;
  config.num_threads = threads;
  // Tight λ (30 txs/block over 4 shards at 9 units/block): the backlog
  // spills across ticks, so the trace pins execution *order*, not just
  // totals.
  config.work.capacity_per_block = 9.0;
  config.hash_route_unassigned = true;
  // Real account-state execution: the trace additionally pins the per-tick
  // Merkle roots, the abort stream and the migration counts.
  config.state.enabled = true;
  config.state.initial_balance = kGoldenBalance;
  config.state.migration_work_per_account = 1.0;
  return config;
}

/// Records the canonical run: txallo-hybrid under the background
/// allocation schedule with 2 ingest producers on 2 worker threads.
inline Result<engine::ReplayLog> RecordGoldenTrace() {
  const workload::EthereumLikeConfig workload_config = GoldenWorkloadConfig();
  workload::EthereumLikeGenerator generator(workload_config);
  const chain::Ledger ledger =
      generator.GenerateLedger(workload_config.num_blocks);

  allocator::AllocatorOptions options;
  options.params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), kGoldenShards, 2.0);
  options.registry = &generator.registry();
  auto made = allocator::MakeAllocatorFromSpec("txallo-hybrid:global-every=2",
                                               options);
  if (!made.ok()) return made.status();
  allocator::OnlineAllocator* online = (*made)->AsOnline();
  if (online == nullptr) {
    return Status::Internal("txallo-hybrid lost its online interface");
  }

  engine::ReplayLog log;
  engine::ParallelEngine engine(GoldenEngineConfig(/*threads=*/2), nullptr);
  engine::PipelineConfig pipeline;
  pipeline.blocks_per_epoch = kGoldenEpochBlocks;
  pipeline.allocator_mode = engine::AllocatorMode::kBackground;
  pipeline.ingest_producers = 2;
  pipeline.record = &log;
  auto result = engine::RunReallocatedStream(ledger, online, &engine,
                                             pipeline);
  if (!result.ok()) return result.status();
  return log;
}

}  // namespace txallo::testing

// Engine/simulator parity (the acceptance criterion of the parallel-engine
// issue): for seed workloads, the engine's throughput-per-block and mean
// latency must agree with the serial ShardSimulator within 5%. Both run the
// same shared sim::WorkModel semantics, so agreement should in fact be
// exact up to floating-point summation order.
#include <gtest/gtest.h>

#include <memory>

#include "txallo/baselines/hash_allocator.h"
#include "txallo/core/global.h"
#include "txallo/engine/engine.h"
#include "txallo/graph/builder.h"
#include "txallo/sim/shard_sim.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo {
namespace {

struct ParityRun {
  sim::SimReport serial;
  engine::EngineReport parallel;
};

ParityRun RunBoth(const chain::Ledger& ledger, const alloc::Allocation& alloc,
                  uint32_t k, double eta, double capacity,
                  uint32_t num_threads) {
  sim::SimConfig sim_config;
  sim_config.num_shards = k;
  sim_config.eta = eta;
  sim_config.capacity_per_block = capacity;
  sim::ShardSimulator simulator(sim_config);
  for (const chain::Block& block : ledger.blocks()) {
    EXPECT_TRUE(simulator.SubmitBlock(block.transactions(), alloc).ok());
    simulator.Tick();
  }

  engine::EngineConfig engine_config;
  engine_config.num_shards = k;
  engine_config.work = sim_config.work_model();
  engine_config.num_threads = num_threads;
  engine::ParallelEngine engine(
      engine_config, std::make_shared<alloc::Allocation>(alloc));
  for (const chain::Block& block : ledger.blocks()) {
    EXPECT_TRUE(engine.SubmitBlock(block.transactions()).ok());
    engine.Tick();
  }

  ParityRun run;
  run.serial = simulator.DrainAndReport();
  run.parallel = engine.DrainAndReport();
  return run;
}

void ExpectParity(const ParityRun& run) {
  const sim::SimReport& s = run.serial;
  const sim::SimReport& e = run.parallel.sim;
  EXPECT_EQ(e.submitted, s.submitted);
  EXPECT_EQ(e.cross_shard_submitted, s.cross_shard_submitted);
  EXPECT_EQ(e.committed, s.committed);
  EXPECT_EQ(e.blocks_elapsed, s.blocks_elapsed);
  // The 5%-agreement acceptance bound; in practice the two executors agree
  // to summation order.
  EXPECT_NEAR(e.throughput_per_block, s.throughput_per_block,
              0.05 * s.throughput_per_block);
  EXPECT_NEAR(e.avg_latency_blocks, s.avg_latency_blocks,
              0.05 * s.avg_latency_blocks);
  EXPECT_DOUBLE_EQ(e.max_latency_blocks, s.max_latency_blocks);
  EXPECT_NEAR(e.mean_utilization, s.mean_utilization,
              0.05 * s.mean_utilization + 1e-12);
  EXPECT_NEAR(e.residual_work, s.residual_work, 1e-6);
}

chain::Ledger SeedWorkload(workload::EthereumLikeGenerator& gen,
                           uint64_t blocks) {
  return gen.GenerateLedger(blocks);
}

TEST(EngineParityTest, HashAllocationSeedWorkload) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 60;
  config.txs_per_block = 120;
  config.num_accounts = 4'000;
  config.num_communities = 40;
  config.seed = 42;
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = SeedWorkload(gen, config.num_blocks);
  const uint32_t k = 8;
  const double eta = 2.0;
  auto allocation = baselines::AllocateByHash(gen.registry(), k);
  // Mildly under-provisioned so queues build and latency is non-trivial.
  const double capacity =
      1.1 * static_cast<double>(config.txs_per_block) / k;
  for (uint32_t threads : {1u, 4u}) {
    ParityRun run =
        RunBoth(ledger, allocation, k, eta, capacity, threads);
    ExpectParity(run);
  }
}

TEST(EngineParityTest, TxAlloAllocationSeedWorkload) {
  workload::EthereumLikeConfig config;
  config.num_blocks = 50;
  config.txs_per_block = 100;
  config.num_accounts = 3'000;
  config.num_communities = 30;
  config.seed = 7;
  workload::EthereumLikeGenerator gen(config);
  chain::Ledger ledger = SeedWorkload(gen, config.num_blocks);
  const uint32_t k = 8;
  const double eta = 2.0;
  graph::TransactionGraph graph = graph::BuildTransactionGraph(ledger);
  graph.EnsureNodeCount(gen.registry().size());
  graph.Consolidate();
  alloc::AllocationParams params = alloc::AllocationParams::ForExperiment(
      ledger.num_transactions(), k, eta);
  auto result = core::RunGlobalTxAllo(graph, gen.registry().IdsInHashOrder(),
                                      params);
  ASSERT_TRUE(result.ok());
  const double capacity =
      1.05 * static_cast<double>(config.txs_per_block) / k;
  ParityRun run = RunBoth(ledger, *result, k, eta, capacity, 4);
  ExpectParity(run);
  // TxAllo keeps most traffic intra-shard on this workload; sanity-check
  // that the parity harness exercised cross-shard commits anyway.
  EXPECT_GT(run.parallel.sim.cross_shard_submitted, 0u);
  EXPECT_EQ(run.parallel.cross_shard_committed,
            run.parallel.sim.cross_shard_submitted);
}

}  // namespace
}  // namespace txallo

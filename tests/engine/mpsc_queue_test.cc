#include "txallo/engine/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace txallo::engine {
namespace {

TEST(MpscQueueTest, FifoOrderAndDrain) {
  MpscQueue<int> queue(16);
  for (int i = 0; i < 5; ++i) queue.Push(i);
  EXPECT_EQ(queue.size(), 5u);
  std::deque<int> out;
  EXPECT_EQ(queue.DrainTo(out), 5u);
  EXPECT_EQ(queue.size(), 0u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(MpscQueueTest, DrainAppendsToExistingBacklog) {
  MpscQueue<int> queue(16);
  std::deque<int> out{-1};
  queue.Push(7);
  queue.DrainTo(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], -1);
  EXPECT_EQ(out[1], 7);
}

TEST(MpscQueueTest, TryPushRespectsCapacity) {
  MpscQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  std::deque<int> out;
  queue.DrainTo(out);
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(MpscQueueTest, HighWaterAndTotalPushedTrackHistory) {
  MpscQueue<int> queue(8);
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  std::deque<int> out;
  queue.DrainTo(out);
  queue.Push(4);
  EXPECT_EQ(queue.high_water(), 3u);
  EXPECT_EQ(queue.total_pushed(), 4u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(MpscQueueTest, FullHandlerWakesConsumerAndPushUnblocks) {
  MpscQueue<int> queue(1);
  std::deque<int> out;
  std::atomic<int> handler_calls{0};
  // The handler plays the engine's role: nudge a consumer to drain.
  std::atomic<bool> drain_requested{false};
  queue.SetFullHandler([&] {
    ++handler_calls;
    drain_requested.store(true);
  });
  std::thread consumer([&] {
    while (!drain_requested.load()) std::this_thread::yield();
    queue.DrainTo(out);
  });
  queue.Push(1);
  queue.Push(2);  // Capacity 1: must block until the consumer drains.
  consumer.join();
  EXPECT_GE(handler_calls.load(), 1);
  std::deque<int> rest;
  queue.DrainTo(rest);
  ASSERT_EQ(out.size() + rest.size(), 2u);
}

TEST(MpscQueueTest, ConcurrentProducersLoseNothing) {
  MpscQueue<uint64_t> queue(64);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5'000;
  std::deque<uint64_t> consumed;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load()) {
      queue.DrainTo(consumed);
      std::this_thread::yield();
    }
    queue.DrainTo(consumed);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        queue.Push(static_cast<uint64_t>(p) * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true);
  consumer.join();
  ASSERT_EQ(consumed.size(), kProducers * kPerProducer);
  uint64_t sum = 0;
  for (uint64_t v : consumed) sum += v;
  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);  // Every distinct value arrived once.
  EXPECT_EQ(queue.total_pushed(), n);
}

}  // namespace
}  // namespace txallo::engine

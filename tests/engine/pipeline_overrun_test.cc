// Multi-epoch allocation lookahead (PipelineConfig::allow_epoch_overrun):
// a RebalanceTask that overruns its epoch must not block the tick loop —
// the boundary is skipped (counted in PipelineResult::overrun_boundaries)
// and the mapping installs at the next boundary it is ready for. The
// default schedule still blocks, bit-compatible with kDriverDeferred.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "txallo/allocator/allocator.h"
#include "txallo/chain/ledger.h"
#include "txallo/engine/engine.h"
#include "txallo/engine/pipeline.h"
#include "txallo/workload/ethereum_like.h"

namespace txallo::engine {
namespace {

// An online allocator whose background Run() dawdles: with 8-block epochs
// ticking in microseconds, every later boundary arrives while the task is
// still asleep. The mapping itself is trivial (id mod k over the accounts
// seen at snapshot time) — this test is about the schedule, not quality.
class SlowAllocator : public allocator::OnlineAllocator {
 public:
  SlowAllocator(alloc::AllocationParams params, uint64_t sleep_ms)
      : OnlineAllocator("slow-test", params), sleep_ms_(sleep_ms) {}

  void ApplyBlock(const chain::Block& block) override {
    for (const chain::Transaction& tx : block.transactions()) {
      for (chain::AccountId a : tx.accounts()) {
        num_accounts_ = std::max<uint64_t>(num_accounts_, a + 1);
      }
    }
  }

  Result<alloc::Allocation> Allocate(
      const allocator::AllocationContext&) override {
    return Rebalance();
  }

  Result<alloc::Allocation> Rebalance() override {
    return MappingFor(num_accounts_, params_.num_shards);
  }

  std::unique_ptr<allocator::RebalanceTask> BeginRebalance() override {
    // Snapshot now: Run() must not touch the parent (it races ApplyBlock).
    const uint64_t frozen = num_accounts_;
    const uint64_t sleep_ms = sleep_ms_;
    const uint32_t shards = params_.num_shards;
    return std::make_unique<allocator::ClosureRebalanceTask>(
        [frozen, sleep_ms, shards]() -> Result<alloc::Allocation> {
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
          return MappingFor(frozen, shards);
        },
        [](const Result<alloc::Allocation>&) { return Status(); });
  }

 private:
  static Result<alloc::Allocation> MappingFor(uint64_t accounts,
                                              uint32_t shards) {
    alloc::Allocation mapping(accounts, shards);
    for (uint64_t a = 0; a < accounts; ++a) {
      mapping.Assign(static_cast<chain::AccountId>(a),
                     static_cast<alloc::ShardId>(a % shards));
    }
    return mapping;
  }
  const uint64_t sleep_ms_;
  uint64_t num_accounts_ = 0;
};

struct Outcome {
  PipelineResult result;
  uint64_t total_txs = 0;
};

Outcome RunWithSlowAllocator(bool allow_overrun, uint64_t sleep_ms) {
  workload::EthereumLikeConfig workload;
  workload.num_blocks = 40;
  workload.txs_per_block = 30;
  workload.num_accounts = 400;
  workload.num_communities = 8;
  workload.seed = 11;
  workload::EthereumLikeGenerator generator(workload);
  const chain::Ledger ledger = generator.GenerateLedger(workload.num_blocks);

  const uint32_t k = 4;
  SlowAllocator slow(
      alloc::AllocationParams::ForExperiment(ledger.num_transactions(), k,
                                             2.0),
      sleep_ms);

  EngineConfig config;
  config.num_shards = k;
  config.num_threads = 2;
  config.work.capacity_per_block =
      2.0 * static_cast<double>(workload.txs_per_block) / k;
  config.hash_route_unassigned = true;
  ParallelEngine engine(config, nullptr);

  PipelineConfig pipeline;
  pipeline.blocks_per_epoch = 8;  // 5 windows -> 4 boundary rebalances.
  pipeline.allocator_mode = AllocatorMode::kBackground;
  pipeline.allow_epoch_overrun = allow_overrun;
  auto result = RunReallocatedStream(ledger, &slow, &engine, pipeline);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return {*result, ledger.num_transactions()};
}

TEST(PipelineOverrunTest, OverrunningTaskSkipsBoundariesInsteadOfBlocking) {
  const Outcome run = RunWithSlowAllocator(/*allow_overrun=*/true,
                                       /*sleep_ms=*/150);
  // The first boundary launches the task; the remaining boundaries arrive
  // while it still sleeps and must be skipped, not waited for.
  EXPECT_GE(run.result.overrun_boundaries, 1u);
  // Every boundary is accounted for exactly once: launched or skipped.
  EXPECT_EQ(run.result.epochs + run.result.overrun_boundaries, 4u);
  EXPECT_GE(run.result.epochs, 1u);
  // Skipping never drops work: the stream still drains completely.
  EXPECT_EQ(run.result.report.sim.committed, run.total_txs);
  // The final drain harvests the in-flight task, so the overrun schedule
  // still publishes at least the bootstrap mapping.
  EXPECT_GE(run.result.report.reallocations, 1u);
}

TEST(PipelineOverrunTest, DefaultScheduleStillBlocksAtEveryBoundary) {
  const Outcome run = RunWithSlowAllocator(/*allow_overrun=*/false,
                                       /*sleep_ms=*/20);
  EXPECT_EQ(run.result.overrun_boundaries, 0u);
  EXPECT_EQ(run.result.epochs, 4u);
  EXPECT_EQ(run.result.report.sim.committed, run.total_txs);
  // Blocking waits show up as allocation stall, the cost overrun skipping
  // exists to avoid.
  EXPECT_GT(run.result.alloc_wait_seconds, 0.0);
}

TEST(PipelineOverrunTest, FastTaskNeverTriggersOverruns) {
  // With no sleep the task finishes within its epoch; the overrun knob
  // must then change nothing about the schedule.
  const Outcome run = RunWithSlowAllocator(/*allow_overrun=*/true,
                                       /*sleep_ms=*/0);
  EXPECT_EQ(run.result.epochs + run.result.overrun_boundaries, 4u);
  EXPECT_EQ(run.result.report.sim.committed, run.total_txs);
}

}  // namespace
}  // namespace txallo::engine

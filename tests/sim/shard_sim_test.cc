#include "txallo/sim/shard_sim.h"

#include <gtest/gtest.h>

namespace txallo::sim {
namespace {

using chain::Transaction;

alloc::Allocation SplitAllocation() {
  alloc::Allocation a(4, 2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  a.Assign(2, 1);
  a.Assign(3, 1);
  return a;
}

SimConfig Config(uint32_t shards, double eta, double capacity) {
  SimConfig c;
  c.num_shards = shards;
  c.eta = eta;
  c.capacity_per_block = capacity;
  return c;
}

TEST(ShardSimTest, IntraTransactionCommitsInOneBlock) {
  ShardSimulator sim(Config(2, 2.0, 10.0));
  ASSERT_TRUE(sim.SubmitBlock({Transaction::Simple(0, 1)},
                              SplitAllocation()).ok());
  sim.Tick();
  SimReport report = sim.Snapshot();
  EXPECT_EQ(report.committed, 1u);
  EXPECT_DOUBLE_EQ(report.avg_latency_blocks, 1.0);
}

TEST(ShardSimTest, CrossShardPaysExtraRound) {
  ShardSimulator sim(Config(2, 2.0, 10.0));
  ASSERT_TRUE(sim.SubmitBlock({Transaction::Simple(0, 2)},
                              SplitAllocation()).ok());
  SimReport report = sim.DrainAndReport();
  EXPECT_EQ(report.committed, 1u);
  EXPECT_EQ(report.cross_shard_submitted, 1u);
  // Both parts processed in block 1, commit in block 2.
  EXPECT_DOUBLE_EQ(report.avg_latency_blocks, 2.0);
}

TEST(ShardSimTest, ConservationAllSubmittedEventuallyCommit) {
  ShardSimulator sim(Config(2, 3.0, 4.0));
  std::vector<Transaction> txs;
  for (int i = 0; i < 20; ++i) {
    txs.push_back(Transaction::Simple(i % 2, 2 + (i % 2)));  // Cross.
    txs.push_back(Transaction::Simple(0, 1));                // Intra.
  }
  ASSERT_TRUE(sim.SubmitBlock(txs, SplitAllocation()).ok());
  SimReport report = sim.DrainAndReport();
  EXPECT_EQ(report.committed, report.submitted);
  EXPECT_EQ(report.submitted, 40u);
  EXPECT_DOUBLE_EQ(report.residual_work, 0.0);
}

TEST(ShardSimTest, OverloadedShardQueuesWork) {
  ShardSimulator sim(Config(2, 2.0, 2.0));  // Tiny capacity.
  std::vector<Transaction> txs(10, Transaction::Simple(0, 1));
  ASSERT_TRUE(sim.SubmitBlock(txs, SplitAllocation()).ok());
  sim.Tick();
  SimReport mid = sim.Snapshot();
  EXPECT_EQ(mid.committed, 2u);  // Capacity 2 per block.
  EXPECT_GT(sim.QueuedWork(0), 0.0);
  SimReport done = sim.DrainAndReport();
  EXPECT_EQ(done.committed, 10u);
  // Last transactions waited ~5 blocks.
  EXPECT_GE(done.max_latency_blocks, 5.0);
}

TEST(ShardSimTest, RejectsUnassignedAccounts) {
  ShardSimulator sim(Config(2, 2.0, 10.0));
  alloc::Allocation partial(4, 2);
  partial.Assign(0, 0);
  Status st = sim.SubmitBlock({Transaction::Simple(0, 3)}, partial);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardSimTest, UtilizationReflectsLoad) {
  ShardSimulator sim(Config(2, 2.0, 10.0));
  // All work in shard 0: shard 1 idles -> mean utilization ~50% of shard 0.
  std::vector<Transaction> txs(10, Transaction::Simple(0, 1));
  ASSERT_TRUE(sim.SubmitBlock(txs, SplitAllocation()).ok());
  sim.Tick();
  SimReport report = sim.Snapshot();
  EXPECT_NEAR(report.mean_utilization, 0.5, 1e-9);
}

TEST(ShardSimTest, MultiShardTransactionNeedsAllParts) {
  // 3-shard transaction: slowest shard gates the commit.
  SimConfig config = Config(3, 2.0, 2.0);
  ShardSimulator sim(config);
  alloc::Allocation a(3, 3);
  a.Assign(0, 0);
  a.Assign(1, 1);
  a.Assign(2, 2);
  // Pre-load shard 2 with intra work so its part of the cross tx queues.
  alloc::Allocation same(3, 3);
  same.Assign(0, 2);
  same.Assign(1, 2);
  same.Assign(2, 2);
  std::vector<Transaction> filler(6, Transaction::Simple(0, 1));
  ASSERT_TRUE(sim.SubmitBlock(filler, same).ok());
  ASSERT_TRUE(sim.SubmitBlock({Transaction({0, 1}, {2})}, a).ok());
  SimReport report = sim.DrainAndReport();
  EXPECT_EQ(report.committed, 7u);
  // The cross tx committed well after block 1.
  EXPECT_GT(report.max_latency_blocks, 2.0);
}

TEST(ShardSimTest, ZeroCrossCommitRoundsDisablesExtraLatency) {
  SimConfig config = Config(2, 2.0, 10.0);
  config.cross_shard_commit_rounds = 0;
  ShardSimulator sim(config);
  ASSERT_TRUE(sim.SubmitBlock({Transaction::Simple(0, 2)},
                              SplitAllocation()).ok());
  SimReport report = sim.DrainAndReport();
  EXPECT_DOUBLE_EQ(report.avg_latency_blocks, 1.0);
}

TEST(ShardSimTest, ReallocationBetweenBlocksLosesNothing) {
  // The simulator routes each block by whatever mapping it is given;
  // switching mappings mid-run (a reconfiguration) must not lose or
  // double-commit transactions already in flight.
  ShardSimulator sim(Config(2, 2.0, 3.0));
  alloc::Allocation before = SplitAllocation();
  alloc::Allocation after(4, 2);
  after.Assign(0, 1);
  after.Assign(1, 1);
  after.Assign(2, 0);
  after.Assign(3, 0);
  std::vector<Transaction> txs(10, Transaction::Simple(0, 1));
  ASSERT_TRUE(sim.SubmitBlock(txs, before).ok());
  sim.Tick();
  ASSERT_TRUE(sim.SubmitBlock(txs, after).ok());  // New mapping.
  SimReport report = sim.DrainAndReport();
  EXPECT_EQ(report.submitted, 20u);
  EXPECT_EQ(report.committed, 20u);
}

TEST(ShardSimTest, ThroughputSaturatesAtCapacity) {
  // Feed 2x capacity of intra work per block: steady-state throughput must
  // equal capacity, not demand.
  ShardSimulator sim(Config(1, 2.0, 5.0));
  alloc::Allocation one(2, 1);
  one.Assign(0, 0);
  one.Assign(1, 0);
  for (int b = 0; b < 20; ++b) {
    std::vector<Transaction> txs(10, Transaction::Simple(0, 1));
    ASSERT_TRUE(sim.SubmitBlock(txs, one).ok());
    sim.Tick();
  }
  SimReport report = sim.Snapshot();
  EXPECT_NEAR(report.throughput_per_block, 5.0, 0.5);
}

}  // namespace
}  // namespace txallo::sim

#include "txallo/sim/reconfig.h"

#include <gtest/gtest.h>

namespace txallo::sim {
namespace {

TEST(ReconfigTest, IdenticalAllocationsMoveNothing) {
  alloc::Allocation a(10, 2);
  for (chain::AccountId id = 0; id < 10; ++id) a.Assign(id, id % 2);
  ReconfigStats stats = CompareAllocations(a, a);
  EXPECT_EQ(stats.accounts_compared, 10u);
  EXPECT_EQ(stats.accounts_moved, 0u);
  EXPECT_DOUBLE_EQ(stats.moved_fraction, 0.0);
}

TEST(ReconfigTest, CountsMoves) {
  alloc::Allocation before(4, 2), after(4, 2);
  for (chain::AccountId id = 0; id < 4; ++id) {
    before.Assign(id, 0);
    after.Assign(id, id < 2 ? 0u : 1u);
  }
  ReconfigStats stats = CompareAllocations(before, after);
  EXPECT_EQ(stats.accounts_moved, 2u);
  EXPECT_DOUBLE_EQ(stats.moved_fraction, 0.5);
}

TEST(ReconfigTest, NewAccountsAreNotMoves) {
  alloc::Allocation before(2, 2), after(5, 2);
  before.Assign(0, 0);
  before.Assign(1, 1);
  for (chain::AccountId id = 0; id < 5; ++id) after.Assign(id, 0);
  ReconfigStats stats = CompareAllocations(before, after);
  EXPECT_EQ(stats.accounts_compared, 2u);
  EXPECT_EQ(stats.accounts_moved, 1u);  // Account 1: shard 1 -> 0.
}

TEST(ReconfigTest, UnassignedEntriesSkipped) {
  alloc::Allocation before(3, 2), after(3, 2);
  before.Assign(0, 0);  // 1, 2 unassigned.
  after.Assign(0, 1);
  after.Assign(1, 0);
  ReconfigStats stats = CompareAllocations(before, after);
  EXPECT_EQ(stats.accounts_compared, 1u);
  EXPECT_EQ(stats.accounts_moved, 1u);
}

}  // namespace
}  // namespace txallo::sim
